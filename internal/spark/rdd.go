package spark

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sparkdbscan/internal/hdfs"
	"sparkdbscan/internal/simtime"
)

// RDD is a resilient distributed dataset: a lazy, partitioned
// collection described by its lineage. Narrow transformations (Map,
// Filter, FlatMap, MapPartitions) are pipelined — they compose compute
// functions and execute inside a single stage, exactly as Spark's DAG
// scheduler pipelines narrow dependencies. Wide operations (see
// shuffle.go) insert a stage boundary.
//
// Because Go methods cannot introduce type parameters, transformations
// whose element type changes are package-level functions (spark.Map,
// spark.FlatMap); same-type operations are methods.
type RDD[T any] struct {
	ctx   *Context
	id    int
	name  string
	parts int
	// compute materializes one partition. It must be deterministic: a
	// retried task recomputes the partition from lineage by calling it
	// again.
	compute func(split int, tc *TaskContext) ([]T, error)
	// prepare runs parent stages (shuffle map sides). It executes at
	// most once per job graph thanks to sync.Once chaining.
	prepare func() error

	// sizeFn estimates the serialized size of one element; used to
	// charge executor→driver result traffic and shuffle volume. Held
	// behind an atomic pointer because tasks of concurrent jobs read
	// it while the driver may still be wiring the lineage; writes are
	// only legal before the first materialization (see SetSizeFunc).
	sizeFn  atomic.Pointer[func(T) int64]
	started atomic.Bool // a partition has materialized

	cacheMu      sync.Mutex
	cached       bool
	cache        [][]T
	checkpointed bool
}

// defaultElemSize is the serialized-size guess for elements without a
// SizeFunc: a small struct or boxed number.
const defaultElemSize = 16

func newRDD[T any](ctx *Context, name string, parts int,
	compute func(split int, tc *TaskContext) ([]T, error)) *RDD[T] {
	ctx.mu.Lock()
	id := ctx.nextRDDID
	ctx.nextRDDID++
	ctx.mu.Unlock()
	r := &RDD[T]{
		ctx:     ctx,
		id:      id,
		name:    name,
		parts:   parts,
		compute: compute,
	}
	defaultFn := func(T) int64 { return defaultElemSize }
	r.sizeFn.Store(&defaultFn)
	return r
}

// ID returns the RDD's unique id within its context.
func (r *RDD[T]) ID() int { return r.id }

// Name returns the RDD's lineage label.
func (r *RDD[T]) Name() string { return r.name }

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return r.parts }

// SetSizeFunc installs a per-element serialized-size estimator and
// returns r for chaining. It must be called before the RDD's first
// materialization (i.e. while wiring the lineage, not while jobs run):
// tasks read the estimator concurrently, so a later swap would race
// and charge different tasks inconsistently. Calling it after a
// partition has materialized panics.
func (r *RDD[T]) SetSizeFunc(f func(T) int64) *RDD[T] {
	if r.started.Load() {
		panic(fmt.Sprintf("spark: SetSizeFunc on %q after it materialized; set size functions before the first action", r.name))
	}
	r.sizeFn.Store(&f)
	return r
}

// elemSize prices one element with the current estimator.
func (r *RDD[T]) elemSize(e T) int64 { return (*r.sizeFn.Load())(e) }

// inheritSize copies the parent's estimator into a derived same-type
// RDD (filter, coalesce, union — elements pass through unchanged).
func (r *RDD[T]) inheritSize(parent *RDD[T]) {
	r.sizeFn.Store(parent.sizeFn.Load())
}

// Persist marks the RDD cached: the first materialization of each
// partition is kept in memory and reused by later jobs (and by task
// retries of downstream stages). Mirrors rdd.cache().
func (r *RDD[T]) Persist() *RDD[T] {
	r.cacheMu.Lock()
	if !r.cached {
		r.cached = true
		r.cache = make([][]T, r.parts)
	}
	r.cacheMu.Unlock()
	return r
}

// materialize returns partition split, honouring the cache.
func (r *RDD[T]) materialize(split int, tc *TaskContext) ([]T, error) {
	r.started.Store(true)
	if !r.cached {
		return r.compute(split, tc)
	}
	r.cacheMu.Lock()
	if c := r.cache[split]; c != nil {
		r.cacheMu.Unlock()
		return c, nil
	}
	r.cacheMu.Unlock()
	data, err := r.compute(split, tc)
	if err != nil {
		return nil, err
	}
	r.cacheMu.Lock()
	if r.cache[split] == nil {
		r.cache[split] = data
	} else {
		data = r.cache[split]
	}
	r.cacheMu.Unlock()
	return data, nil
}

func (r *RDD[T]) runPrepare() error {
	if r.prepare == nil {
		return nil
	}
	return r.prepare()
}

// ---------- Creation ----------

// Parallelize distributes data across parts partitions (contiguous
// index ranges, matching the paper's partitioning of points). The
// driver→executor shipping cost of each slice is charged to the task
// that first materializes it.
func Parallelize[T any](ctx *Context, data []T, parts int) *RDD[T] {
	if parts < 1 {
		parts = 1
	}
	n := len(data)
	r := newRDD[T](ctx, "parallelize", parts, nil)
	r.compute = func(split int, tc *TaskContext) ([]T, error) {
		lo, hi := partitionRange(n, parts, split)
		out := data[lo:hi]
		var w simtime.Work
		for _, e := range out {
			w.SerBytes += r.elemSize(e)
		}
		tc.Charge(w)
		return out, nil
	}
	return r
}

// partitionRange splits n elements into parts contiguous ranges and
// returns the bounds of range split. The first n%parts ranges get one
// extra element.
func partitionRange(n, parts, split int) (lo, hi int) {
	base := n / parts
	extra := n % parts
	lo = split*base + min(split, extra)
	hi = lo + base
	if split < extra {
		hi++
	}
	return lo, hi
}

// TextFile reads an HDFS file as one partition per block, charging the
// block reads (the Δ ingestion term) to the reading tasks. Lines are
// returned unsplit per block; callers parse them.
func TextFile(ctx *Context, fs *hdfs.FileSystem, name string) (*RDD[[]byte], error) {
	blocks, err := fs.NumBlocks(name)
	if err != nil {
		return nil, err
	}
	r := newRDD[[]byte](ctx, fmt.Sprintf("textFile(%s)", name), blocks, nil)
	r.compute = func(split int, tc *TaskContext) ([][]byte, error) {
		var w simtime.Work
		block, err := fs.ReadBlock(name, split, &w)
		if err != nil {
			return nil, err
		}
		tc.Charge(w)
		return [][]byte{block}, nil
	}
	return r, nil
}

// TextFileLines reads an HDFS text file as one partition per block with
// Hadoop TextInputFormat record semantics: a line belongs to the split
// in which it *starts*; a reader whose split does not begin the file
// positions itself one byte before the split, discards through the
// first newline (an empty discard when the previous block ended exactly
// on a line boundary), and reads past its split end to finish its last
// line. Lines must be shorter than a block.
func TextFileLines(ctx *Context, fs *hdfs.FileSystem, name string) (*RDD[string], error) {
	size, err := fs.Size(name)
	if err != nil {
		return nil, err
	}
	bs := int64(fs.BlockSize())
	splits := int((size + bs - 1) / bs)
	if splits == 0 {
		splits = 1
	}
	r := newRDD[string](ctx, fmt.Sprintf("textFileLines(%s)", name), splits, nil)
	r.compute = func(split int, tc *TaskContext) ([]string, error) {
		start := int64(split) * bs
		end := start + bs
		if end > size {
			end = size
		}
		readStart := start
		if split > 0 {
			readStart-- // Hadoop's start-1 trick
		}
		// Over-read one extra block to complete the final line.
		var w simtime.Work
		data, err := fs.ReadAt(name, readStart, end-readStart+bs, &w)
		if err != nil {
			return nil, err
		}
		tc.Charge(w)
		pos := 0
		abs := readStart
		if split > 0 {
			// Discard through the first newline: that line started in
			// (and belongs to) the previous split.
			for pos < len(data) && data[pos] != '\n' {
				pos++
			}
			pos++ // consume the newline itself
			abs = readStart + int64(pos)
		}
		var lines []string
		for abs < end && pos < len(data) {
			nl := pos
			for nl < len(data) && data[nl] != '\n' {
				nl++
			}
			if nl == len(data) && abs+int64(nl-pos) < size {
				return nil, fmt.Errorf("spark: line at byte %d longer than a block", abs)
			}
			lines = append(lines, string(data[pos:nl]))
			abs += int64(nl - pos + 1)
			pos = nl + 1
		}
		tc.ChargeElems(int64(len(lines)))
		return lines, nil
	}
	return r, nil
}

// ---------- Narrow transformations ----------

// Map applies f to every element. Pipelined (no stage boundary).
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	out := newRDD[U](r.ctx, r.name+".map", r.parts, nil)
	out.prepare = r.runPrepare
	out.compute = func(split int, tc *TaskContext) ([]U, error) {
		in, err := r.materialize(split, tc)
		if err != nil {
			return nil, err
		}
		res := make([]U, len(in))
		for i, e := range in {
			res[i] = f(e)
		}
		tc.ChargeElems(int64(len(in)))
		return res, nil
	}
	return out
}

// FlatMap applies f to every element and concatenates the results.
func FlatMap[T, U any](r *RDD[T], f func(T) []U) *RDD[U] {
	out := newRDD[U](r.ctx, r.name+".flatMap", r.parts, nil)
	out.prepare = r.runPrepare
	out.compute = func(split int, tc *TaskContext) ([]U, error) {
		in, err := r.materialize(split, tc)
		if err != nil {
			return nil, err
		}
		var res []U
		for _, e := range in {
			res = append(res, f(e)...)
		}
		tc.ChargeElems(int64(len(in)))
		return res, nil
	}
	return out
}

// Filter keeps the elements for which pred is true.
func (r *RDD[T]) Filter(pred func(T) bool) *RDD[T] {
	out := newRDD[T](r.ctx, r.name+".filter", r.parts, nil)
	out.prepare = r.runPrepare
	out.inheritSize(r)
	out.compute = func(split int, tc *TaskContext) ([]T, error) {
		in, err := r.materialize(split, tc)
		if err != nil {
			return nil, err
		}
		var res []T
		for _, e := range in {
			if pred(e) {
				res = append(res, e)
			}
		}
		tc.ChargeElems(int64(len(in)))
		return res, nil
	}
	return out
}

// MapPartitionsWithIndex transforms a whole partition at once, giving f
// the partition index and task context — the hook the DBSCAN runner
// uses for its per-executor local clustering.
func MapPartitionsWithIndex[T, U any](r *RDD[T],
	f func(split int, in []T, tc *TaskContext) ([]U, error)) *RDD[U] {
	out := newRDD[U](r.ctx, r.name+".mapPartitions", r.parts, nil)
	out.prepare = r.runPrepare
	out.compute = func(split int, tc *TaskContext) ([]U, error) {
		in, err := r.materialize(split, tc)
		if err != nil {
			return nil, err
		}
		return f(split, in, tc)
	}
	return out
}

// ---------- Actions ----------

// Collect materializes every partition and returns all elements in
// partition order, charging the executor→driver result transfer.
func (r *RDD[T]) Collect() ([]T, error) {
	if err := r.runPrepare(); err != nil {
		return nil, err
	}
	parts, err := runStage(r.ctx, r.name+".collect", r.parts,
		func(split int, tc *TaskContext) ([]T, error) {
			data, err := r.materialize(split, tc)
			if err != nil {
				return nil, err
			}
			var w simtime.Work
			for _, e := range data {
				w.SerBytes += r.elemSize(e)
			}
			w.NetBytes = w.SerBytes
			tc.Charge(w)
			return data, nil
		})
	if err != nil {
		return nil, err
	}
	var out []T
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Count returns the number of elements.
func (r *RDD[T]) Count() (int64, error) {
	if err := r.runPrepare(); err != nil {
		return 0, err
	}
	counts, err := runStage(r.ctx, r.name+".count", r.parts,
		func(split int, tc *TaskContext) (int64, error) {
			data, err := r.materialize(split, tc)
			if err != nil {
				return 0, err
			}
			return int64(len(data)), nil
		})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// Reduce folds all elements with f, which must be associative and
// commutative. It returns an error on an empty RDD.
func (r *RDD[T]) Reduce(f func(T, T) T) (T, error) {
	var zero T
	if err := r.runPrepare(); err != nil {
		return zero, err
	}
	type partial struct {
		v  T
		ok bool
	}
	parts, err := runStage(r.ctx, r.name+".reduce", r.parts,
		func(split int, tc *TaskContext) (partial, error) {
			data, err := r.materialize(split, tc)
			if err != nil {
				return partial{}, err
			}
			tc.ChargeElems(int64(len(data)))
			if len(data) == 0 {
				return partial{}, nil
			}
			acc := data[0]
			for _, e := range data[1:] {
				acc = f(acc, e)
			}
			return partial{v: acc, ok: true}, nil
		})
	if err != nil {
		return zero, err
	}
	var acc T
	have := false
	for _, p := range parts {
		if !p.ok {
			continue
		}
		if !have {
			acc, have = p.v, true
		} else {
			acc = f(acc, p.v)
		}
	}
	if !have {
		return zero, fmt.Errorf("spark: reduce of empty RDD")
	}
	return acc, nil
}

// Foreach runs f on every element, for side effects such as
// accumulator updates.
func (r *RDD[T]) Foreach(f func(tc *TaskContext, e T)) error {
	return r.ForeachPartition(func(split int, in []T, tc *TaskContext) error {
		for _, e := range in {
			f(tc, e)
		}
		tc.ChargeElems(int64(len(in)))
		return nil
	})
}

// ForeachPartition runs f once per partition — the paper's Algorithm 2
// executor closure (lines 4–29) runs inside one of these.
func (r *RDD[T]) ForeachPartition(f func(split int, in []T, tc *TaskContext) error) error {
	if err := r.runPrepare(); err != nil {
		return err
	}
	_, err := runStage(r.ctx, r.name+".foreachPartition", r.parts,
		func(split int, tc *TaskContext) (struct{}, error) {
			data, err := r.materialize(split, tc)
			if err != nil {
				return struct{}{}, err
			}
			return struct{}{}, f(split, data, tc)
		})
	return err
}
