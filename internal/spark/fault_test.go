package spark

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"sparkdbscan/internal/simtime"
)

// countStage runs one chargeable stage and returns the report.
func countStage(t *testing.T, ctx *Context) Report {
	t.Helper()
	rdd := Parallelize(ctx, intRange(64), 8)
	err := rdd.ForeachPartition(func(split int, in []int, tc *TaskContext) error {
		tc.Charge(simtime.Work{DistComps: 500_000})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctx.Report()
}

func TestFailedAttemptsCostVirtualTime(t *testing.T) {
	// Same work, same seed; the faulty run fails attempt 0 of every
	// task. Each failed attempt occupies its core to the failure point
	// and the retry waits out the backoff, so executor time must
	// strictly exceed the clean run — the bug this layer fixes is that
	// the two used to be equal.
	clean := countStage(t, NewContext(Config{Cores: 4, Seed: 11}))
	faulty := countStage(t, NewContext(Config{
		Cores: 4, Seed: 11,
		FailureInjector: func(stage, partition, attempt int) error {
			if attempt == 0 {
				return errors.New("injected")
			}
			return nil
		},
	}))
	if faulty.ExecutorSeconds <= clean.ExecutorSeconds {
		t.Fatalf("faulty run not slower: clean %g, faulty %g",
			clean.ExecutorSeconds, faulty.ExecutorSeconds)
	}
	st := faulty.Stages[0]
	if st.Failures != 8 {
		t.Fatalf("Failures = %d, want 8 (one per task)", st.Failures)
	}
	if st.RetrySeconds <= 0 || st.BackoffSeconds <= 0 {
		t.Fatalf("retry/backoff not charged: %+v", st)
	}
	if clean.Stages[0].Failures != 0 || clean.Stages[0].RetrySeconds != 0 {
		t.Fatalf("clean run reports failures: %+v", clean.Stages[0])
	}
}

func TestFailedComputeWorkKeptInLedger(t *testing.T) {
	// An attempt that charges work and then errors must surface that
	// work in the stage's FailedWork ledger instead of dropping it.
	ctx := NewContext(Config{Cores: 2})
	rdd := Parallelize(ctx, intRange(8), 2)
	out := MapPartitionsWithIndex(rdd, func(split int, in []int, tc *TaskContext) ([]int, error) {
		tc.Charge(simtime.Work{Elems: 7777})
		if split == 1 && tc.Attempt == 0 {
			return nil, errors.New("compute blew up")
		}
		return in, nil
	})
	if _, err := out.Collect(); err != nil {
		t.Fatal(err)
	}
	rep := ctx.Report()
	st := rep.Stages[0]
	if st.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", st.Failures)
	}
	if st.FailedWork.Elems != 7777 {
		t.Fatalf("FailedWork.Elems = %d, want 7777 (failed attempt's metered work dropped)",
			st.FailedWork.Elems)
	}
	if st.RetrySeconds <= 0 {
		t.Fatalf("failed attempt occupied no core time: %+v", st)
	}
}

func TestStopAbortsRunningStage(t *testing.T) {
	// Stop() fired from inside a task must abort the stage between
	// task launches, not let it run to completion.
	ctx := NewContext(Config{Cores: 1, HostParallelism: 1})
	rdd := Parallelize(ctx, intRange(32), 16)
	var launched atomic.Int64
	err := rdd.ForeachPartition(func(split int, in []int, tc *TaskContext) error {
		launched.Add(1)
		if split == 2 {
			ctx.Stop()
		}
		return nil
	})
	if err == nil {
		t.Fatal("stage survived a Stop()")
	}
	if !strings.Contains(err.Error(), "context stopped") {
		t.Fatalf("error = %v, want a context-stopped error", err)
	}
	if n := launched.Load(); n >= 16 {
		t.Fatalf("all %d tasks launched despite Stop()", n)
	}
}

func TestSetSizeFuncAfterMaterializePanics(t *testing.T) {
	ctx := NewContext(Config{})
	rdd := Parallelize(ctx, intRange(8), 2)
	if _, err := rdd.Collect(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetSizeFunc after materialization did not panic")
		}
	}()
	rdd.SetSizeFunc(func(int) int64 { return 99 })
}

func TestCachedRDDConcurrentJobsNoRace(t *testing.T) {
	// A persisted RDD reused by concurrent jobs: every task reads the
	// size estimator while the cache fills. Run under -race (the CI
	// fault-matrix job does), this guards the atomic sizeFn.
	ctx := NewContext(Config{Cores: 4})
	base := Parallelize(ctx, intRange(1000), 8).
		SetSizeFunc(func(int) int64 { return 8 }).
		Persist()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for j := 0; j < 4; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			if j%2 == 0 {
				_, errs[j] = base.Collect()
			} else {
				_, errs[j] = base.Count()
			}
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestFaultProfileDeterministic(t *testing.T) {
	run := func(seed uint64) Report {
		return countStage(t, NewContext(Config{
			Cores: 8, CoresPerExecutor: 2, Seed: 5,
			Faults: &FaultProfile{
				Seed:              seed,
				TaskFailRate:      0.4,
				SlowRate:          0.2,
				ExecutorCrashRate: 0.3,
			},
		}))
	}
	a, b := run(13), run(13)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same fault seed, different reports:\n%+v\n%+v", a, b)
	}
	c := run(14)
	if a.ExecutorSeconds == c.ExecutorSeconds && reflect.DeepEqual(a.Stages, c.Stages) {
		t.Fatalf("different fault seeds produced identical schedules")
	}
}

func TestProfileFailuresPreserveResultsAndAccumulators(t *testing.T) {
	// Heavy injected faults may move time but never results — and
	// accumulators still count each partition exactly once.
	mk := func(p *FaultProfile) ([]int, int64, Report) {
		ctx := NewContext(Config{Cores: 4, CoresPerExecutor: 2, Faults: p})
		rdd := Parallelize(ctx, intRange(100), 10)
		acc := CounterAccumulator(ctx)
		doubled := Map(rdd, func(x int) int { return 2 * x })
		if err := doubled.Foreach(func(tc *TaskContext, v int) { acc.Add(tc, 1) }); err != nil {
			t.Fatal(err)
		}
		out, err := doubled.Collect()
		if err != nil {
			t.Fatal(err)
		}
		return out, acc.Value(), ctx.Report()
	}
	cleanOut, cleanAcc, _ := mk(nil)
	for _, seed := range []uint64{1, 2, 3} {
		out, acc, rep := mk(&FaultProfile{Seed: seed, TaskFailRate: 0.5, SlowRate: 0.3})
		if !reflect.DeepEqual(out, cleanOut) {
			t.Fatalf("seed %d: faults changed results", seed)
		}
		if acc != cleanAcc || acc != 100 {
			t.Fatalf("seed %d: accumulator = %d, want 100", seed, acc)
		}
		if rep.FailedAttempts() == 0 {
			t.Fatalf("seed %d: 50%% fail rate injected nothing", seed)
		}
	}
}

func TestExecutorCrashRestartsAndRepaysWarmup(t *testing.T) {
	// Every executor crashes in every stage (rate 1). The restart must
	// be counted and the broadcast warm-up re-paid, so a run with a
	// large broadcast loses strictly more time to the crash than one
	// without.
	mk := func(bcastBytes int64, crash float64) Report {
		ctx := NewContext(Config{
			Cores: 4, CoresPerExecutor: 2, Seed: 9,
			Faults: &FaultProfile{Seed: 17, ExecutorCrashRate: crash},
		})
		if bcastBytes > 0 {
			NewBroadcast(ctx, "payload", bcastBytes)
		}
		return countStage(t, ctx)
	}
	crashed := mk(0, 1)
	if crashed.ExecutorRestarts == 0 {
		t.Fatalf("crash rate 1 produced no restarts: %+v", crashed)
	}
	clean := mk(0, 0)
	if crashed.ExecutorSeconds <= clean.ExecutorSeconds {
		t.Fatalf("crash did not cost time: clean %g, crashed %g",
			clean.ExecutorSeconds, crashed.ExecutorSeconds)
	}
	// The broadcast warm-up is re-paid on restart: the crash penalty
	// grows with the broadcast size.
	const mb = int64(1) << 20
	smallPenalty := mk(mb, 1).ExecutorSeconds - mk(mb, 0).ExecutorSeconds
	bigPenalty := mk(64*mb, 1).ExecutorSeconds - mk(64*mb, 0).ExecutorSeconds
	if bigPenalty <= smallPenalty {
		t.Fatalf("restart did not re-pay broadcast warm-up: penalty %g (1MB) vs %g (64MB)",
			smallPenalty, bigPenalty)
	}
}

func TestBlacklistAfterRepeatedFailures(t *testing.T) {
	ctx := NewContext(Config{
		Cores: 8, CoresPerExecutor: 4, // 2 executors
		Faults: &FaultProfile{Seed: 21, TaskFailRate: 0.6, MaxExecutorFailures: 3},
	})
	// Several stages so failures accumulate past the threshold.
	for i := 0; i < 4; i++ {
		countStage(t, ctx)
	}
	rep := ctx.Report()
	if len(rep.BlacklistEvents) != 1 {
		t.Fatalf("BlacklistEvents = %v, want exactly one (last executor is protected)",
			rep.BlacklistEvents)
	}
	ev := rep.BlacklistEvents[0]
	if ev.Failures < 3 {
		t.Fatalf("blacklisted below threshold: %+v", ev)
	}
	bl := ctx.BlacklistedExecutors()
	if len(bl) != 1 || bl[0] != ev.Executor {
		t.Fatalf("BlacklistedExecutors() = %v, want [%d]", bl, ev.Executor)
	}
	// Later jobs still complete on the surviving executor.
	out, err := Parallelize(ctx, intRange(10), 2).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("post-blacklist job returned %d elems", len(out))
	}
}

func TestNegativeStragglerFracDisablesJitter(t *testing.T) {
	cfg := Config{StragglerFrac: -1}.withDefaults()
	if cfg.StragglerFrac != 0 {
		t.Fatalf("StragglerFrac = %g, want 0 for negative input", cfg.StragglerFrac)
	}
	// With the jitter off, the straggler seed cannot move the
	// schedule; with it on (default 0.25), it does.
	run := func(frac float64, seed uint64) float64 {
		ctx := NewContext(Config{Cores: 4, StragglerFrac: frac, Seed: seed})
		rdd := Parallelize(ctx, intRange(16), 4)
		if err := rdd.ForeachPartition(func(split int, in []int, tc *TaskContext) error {
			tc.Charge(simtime.Work{Elems: 100_000})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return ctx.Report().ExecutorSeconds
	}
	if a, b := run(-1, 1), run(-1, 2); a != b {
		t.Fatalf("seed moved a jitter-free schedule: %g vs %g", a, b)
	}
	if a, b := run(0.25, 1), run(0.25, 2); a == b {
		t.Fatalf("straggler jitter had no effect: %g vs %g", a, b)
	}
}
