package spark

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"

	"sparkdbscan/internal/hdfs"
	"sparkdbscan/internal/simtime"
)

func intRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizeCollect(t *testing.T) {
	for _, parts := range []int{1, 2, 3, 7, 100} {
		ctx := NewContext(Config{Cores: 4})
		data := intRange(100)
		rdd := Parallelize(ctx, data, parts)
		got, err := rdd.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("parts=%d: collected %d", parts, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("parts=%d: order broken at %d: %d", parts, i, v)
			}
		}
	}
}

func TestPartitionRangeCoversAll(t *testing.T) {
	for n := 0; n < 50; n++ {
		for parts := 1; parts < 12; parts++ {
			covered := 0
			prevHi := 0
			for s := 0; s < parts; s++ {
				lo, hi := partitionRange(n, parts, s)
				if lo != prevHi {
					t.Fatalf("n=%d parts=%d split=%d: gap (lo=%d prev=%d)", n, parts, s, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("n=%d parts=%d split=%d: negative range", n, parts, s)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n || prevHi != n {
				t.Fatalf("n=%d parts=%d: covered %d, end %d", n, parts, covered, prevHi)
			}
		}
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := NewContext(Config{Cores: 2})
	rdd := Parallelize(ctx, intRange(20), 4)
	doubled := Map(rdd, func(x int) int { return 2 * x })
	evens := doubled.Filter(func(x int) bool { return x%4 == 0 })
	expanded := FlatMap(evens, func(x int) []string {
		return []string{fmt.Sprint(x), fmt.Sprint(x + 1)}
	})
	got, err := expanded.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// evens of doubled 0..38 divisible by 4: 0,4,...,36 -> 10 values, 2 strings each.
	if len(got) != 20 {
		t.Fatalf("got %d elements: %v", len(got), got)
	}
	if got[0] != "0" || got[1] != "1" || got[2] != "4" {
		t.Fatalf("unexpected head: %v", got[:3])
	}
}

func TestCountAndReduce(t *testing.T) {
	ctx := NewContext(Config{Cores: 3})
	rdd := Parallelize(ctx, intRange(101), 7)
	n, err := rdd.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 101 {
		t.Fatalf("Count = %d", n)
	}
	sum, err := rdd.Reduce(func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 5050 {
		t.Fatalf("Reduce sum = %d", sum)
	}
}

func TestReduceEmptyRDD(t *testing.T) {
	ctx := NewContext(Config{})
	rdd := Parallelize(ctx, []int{}, 3)
	if _, err := rdd.Reduce(func(a, b int) int { return a + b }); err == nil {
		t.Fatal("Reduce on empty RDD did not error")
	}
}

func TestReduceWithEmptyPartitions(t *testing.T) {
	ctx := NewContext(Config{})
	rdd := Parallelize(ctx, []int{5}, 4) // 3 empty partitions
	got, err := rdd.Reduce(func(a, b int) int { return a + b })
	if err != nil || got != 5 {
		t.Fatalf("got %d, %v", got, err)
	}
}

func TestMapPartitionsWithIndex(t *testing.T) {
	ctx := NewContext(Config{Cores: 2})
	rdd := Parallelize(ctx, intRange(10), 3)
	tagged, err := MapPartitionsWithIndex(rdd, func(split int, in []int, tc *TaskContext) ([]string, error) {
		out := make([]string, len(in))
		for i, v := range in {
			out[i] = fmt.Sprintf("p%d:%d", split, v)
		}
		return out, nil
	}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if tagged[0] != "p0:0" || tagged[len(tagged)-1] != "p2:9" {
		t.Fatalf("tags wrong: %v", tagged)
	}
}

func TestForeachAccumulator(t *testing.T) {
	ctx := NewContext(Config{Cores: 4})
	rdd := Parallelize(ctx, intRange(1000), 8)
	acc := CounterAccumulator(ctx)
	err := rdd.Foreach(func(tc *TaskContext, v int) {
		acc.Add(tc, int64(v))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := acc.Value(); got != 499500 {
		t.Fatalf("accumulator = %d, want 499500", got)
	}
}

func TestSliceAccumulatorCollectsAll(t *testing.T) {
	ctx := NewContext(Config{Cores: 4})
	rdd := Parallelize(ctx, intRange(50), 5)
	acc := SliceAccumulator[int](ctx)
	err := rdd.ForeachPartition(func(split int, in []int, tc *TaskContext) error {
		acc.Add(tc, in)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := acc.Value()
	sort.Ints(got)
	if len(got) != 50 || got[0] != 0 || got[49] != 49 {
		t.Fatalf("accumulated %d values", len(got))
	}
}

func TestAccumulatorExactlyOnceUnderRetries(t *testing.T) {
	// Tasks in partition 1 fail twice before succeeding; the
	// accumulator must still count each partition exactly once.
	var attempts atomic.Int64
	ctx := NewContext(Config{
		Cores: 2,
		FailureInjector: func(stage, partition, attempt int) error {
			if partition == 1 && attempt < 2 {
				attempts.Add(1)
				return errors.New("injected")
			}
			return nil
		},
	})
	rdd := Parallelize(ctx, intRange(40), 4)
	acc := CounterAccumulator(ctx)
	err := rdd.Foreach(func(tc *TaskContext, v int) { acc.Add(tc, 1) })
	if err != nil {
		t.Fatal(err)
	}
	if got := acc.Value(); got != 40 {
		t.Fatalf("accumulator = %d, want 40 (retries double-counted?)", got)
	}
	if attempts.Load() != 2 {
		t.Fatalf("injector fired %d times, want 2", attempts.Load())
	}
	rep := ctx.Report()
	var failures int
	for _, st := range rep.Stages {
		failures += st.Failures
	}
	if failures != 2 {
		t.Fatalf("reported %d failures, want 2", failures)
	}
}

func TestTaskFailsAfterMaxRetries(t *testing.T) {
	ctx := NewContext(Config{
		Cores:          1,
		MaxTaskRetries: 3,
		FailureInjector: func(stage, partition, attempt int) error {
			return errors.New("always fails")
		},
	})
	rdd := Parallelize(ctx, intRange(4), 2)
	_, err := rdd.Collect()
	if err == nil {
		t.Fatal("job succeeded despite permanent failure")
	}
}

func TestLineageRecomputation(t *testing.T) {
	// A task that fails *after* materializing its parent forces the
	// retry to recompute the parent partition from lineage: the map
	// function runs again for the retried partition.
	var mapRuns atomic.Int64
	var failedOnce atomic.Bool
	ctx := NewContext(Config{Cores: 1})
	rdd := Parallelize(ctx, intRange(10), 2)
	mapped := Map(rdd, func(x int) int {
		mapRuns.Add(1)
		return x + 1
	})
	flaky := MapPartitionsWithIndex(mapped, func(split int, in []int, tc *TaskContext) ([]int, error) {
		if split == 0 && failedOnce.CompareAndSwap(false, true) {
			return nil, errors.New("boom after parent compute")
		}
		return in, nil
	})
	out, err := flaky.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 || out[0] != 1 {
		t.Fatalf("bad output %v", out)
	}
	// 10 elements + 5 recomputed for the retried partition.
	if mapRuns.Load() != 15 {
		t.Fatalf("map ran %d times, want 15 (lineage recomputation)", mapRuns.Load())
	}
}

func TestPersistAvoidsRecomputation(t *testing.T) {
	var computeRuns atomic.Int64
	ctx := NewContext(Config{Cores: 2})
	rdd := Parallelize(ctx, intRange(10), 2)
	expensive := Map(rdd, func(x int) int {
		computeRuns.Add(1)
		return x * x
	}).Persist()
	if _, err := expensive.Count(); err != nil {
		t.Fatal(err)
	}
	if _, err := expensive.Collect(); err != nil {
		t.Fatal(err)
	}
	if computeRuns.Load() != 10 {
		t.Fatalf("cached RDD recomputed: %d map runs, want 10", computeRuns.Load())
	}
}

func TestBroadcast(t *testing.T) {
	ctx := NewContext(Config{Cores: 2})
	table := map[int]string{0: "a", 1: "b"}
	bc := NewBroadcast(ctx, table, 1024)
	rdd := Parallelize(ctx, intRange(10), 2)
	out, err := Map(rdd, func(x int) string { return bc.Value()[x%2] }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "a" || out[1] != "b" {
		t.Fatalf("broadcast values wrong: %v", out[:2])
	}
	if bc.Reads() == 0 {
		t.Fatal("broadcast never read")
	}
	if bc.SizeBytes() != 1024 {
		t.Fatalf("SizeBytes = %d", bc.SizeBytes())
	}
	// The broadcast charges driver serialization time in virtual mode.
	if rep := ctx.Report(); rep.DriverWork.SerBytes < 1024 {
		t.Fatalf("driver not charged for broadcast: %+v", rep.DriverWork)
	}
}

func TestReduceByKey(t *testing.T) {
	ctx := NewContext(Config{Cores: 4})
	var pairs []Pair[string, int]
	for i := 0; i < 100; i++ {
		pairs = append(pairs, Pair[string, int]{Key: fmt.Sprintf("k%d", i%5), Value: i})
	}
	rdd := Parallelize(ctx, pairs, 8)
	reduced, err := SortedCollectByKey(ReduceByKey(rdd, func(a, b int) int { return a + b }, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(reduced) != 5 {
		t.Fatalf("got %d keys", len(reduced))
	}
	// Sum over i where i%5==0: 0+5+...+95 = 950.
	if reduced[0].Key != "k0" || reduced[0].Value != 950 {
		t.Fatalf("k0 = %+v", reduced[0])
	}
	total := 0
	for _, p := range reduced {
		total += p.Value
	}
	if total != 4950 {
		t.Fatalf("total %d", total)
	}
}

func TestGroupByKey(t *testing.T) {
	ctx := NewContext(Config{Cores: 2})
	pairs := []Pair[int, string]{
		{1, "a"}, {2, "b"}, {1, "c"}, {2, "d"}, {3, "e"},
	}
	rdd := Parallelize(ctx, pairs, 3)
	grouped, err := GroupByKey(rdd, 2).Collect()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[int][]string{}
	for _, g := range grouped {
		vs := append([]string(nil), g.Value...)
		sort.Strings(vs)
		byKey[g.Key] = vs
	}
	if len(byKey) != 3 {
		t.Fatalf("got %d keys", len(byKey))
	}
	if got := byKey[1]; len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("key 1 = %v", got)
	}
}

func TestShuffleChargesDiskAndNetwork(t *testing.T) {
	ctx := NewContext(Config{Cores: 2})
	var pairs []Pair[int, int]
	for i := 0; i < 1000; i++ {
		pairs = append(pairs, Pair[int, int]{i % 10, i})
	}
	rdd := Parallelize(ctx, pairs, 4)
	if _, err := ReduceByKey(rdd, func(a, b int) int { return a + b }, 4).Collect(); err != nil {
		t.Fatal(err)
	}
	rep := ctx.Report()
	var w simtime.Work
	for _, st := range rep.Stages {
		w.Add(st.Work)
	}
	if w.DiskWriteBytes == 0 || w.NetBytes == 0 {
		t.Fatalf("shuffle costs not charged: %+v", w)
	}
}

func TestTextFile(t *testing.T) {
	fs := hdfs.New(64, 1) // tiny blocks to force multiple partitions
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	if err := fs.Write("data.txt", payload, nil); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(Config{Cores: 2})
	rdd, err := TextFile(ctx, fs, "data.txt")
	if err != nil {
		t.Fatal(err)
	}
	if rdd.NumPartitions() != 5 { // ceil(300/64)
		t.Fatalf("partitions = %d, want 5", rdd.NumPartitions())
	}
	blocks, err := rdd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var rebuilt []byte
	for _, b := range blocks {
		rebuilt = append(rebuilt, b...)
	}
	if string(rebuilt) != string(payload) {
		t.Fatal("textFile blocks do not reassemble the file")
	}
	if _, err := TextFile(ctx, fs, "missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestStoppedContextRejectsJobs(t *testing.T) {
	ctx := NewContext(Config{})
	rdd := Parallelize(ctx, intRange(5), 1)
	ctx.Stop()
	if _, err := rdd.Collect(); err == nil {
		t.Fatal("stopped context ran a job")
	}
	if err := ctx.RunInDriver("x", func(w *simtime.Work) error { return nil }); err == nil {
		t.Fatal("stopped context ran driver code")
	}
}

func TestVirtualTimeScalesWithCores(t *testing.T) {
	// The same metered work scheduled on more cores must take less
	// simulated time.
	elapsed := func(cores int) float64 {
		ctx := NewContext(Config{Cores: cores, Seed: 7})
		rdd := Parallelize(ctx, intRange(64), 64)
		err := rdd.ForeachPartition(func(split int, in []int, tc *TaskContext) error {
			tc.Charge(simtime.Work{DistComps: 1_000_000}) // 2s of simulated work per task
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return ctx.Report().ExecutorSeconds
	}
	t1, t8, t64 := elapsed(1), elapsed(8), elapsed(64)
	if !(t1 > t8 && t8 > t64) {
		t.Fatalf("virtual time not decreasing: %g, %g, %g", t1, t8, t64)
	}
	if speedup := t1 / t8; speedup < 4 || speedup > 8.01 {
		t.Fatalf("8-core speedup %g outside (4, 8]", speedup)
	}
}

func TestVirtualTimeDeterministic(t *testing.T) {
	run := func() float64 {
		ctx := NewContext(Config{Cores: 4, Seed: 99})
		rdd := Parallelize(ctx, intRange(16), 16)
		_ = rdd.ForeachPartition(func(split int, in []int, tc *TaskContext) error {
			tc.Charge(simtime.Work{Elems: int64(1000 * (split + 1))})
			return nil
		})
		return ctx.Report().ExecutorSeconds
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("virtual time not deterministic: %g vs %g", a, b)
	}
}

func TestRealModeRuns(t *testing.T) {
	ctx := NewContext(Config{Cores: 2, Mode: Real})
	rdd := Parallelize(ctx, intRange(100), 4)
	sum, err := Map(rdd, func(x int) int { return x }).Reduce(func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 4950 {
		t.Fatalf("sum = %d", sum)
	}
	if rep := ctx.Report(); rep.ExecutorSeconds <= 0 {
		t.Fatalf("real mode did not time stages: %+v", rep)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Cores != 1 || cfg.CoresPerExecutor != 8 || cfg.Model == nil ||
		cfg.MaxTaskRetries != 4 || cfg.HostParallelism < 1 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
	if got := (Config{Cores: 17, CoresPerExecutor: 8}).NumExecutors(); got != 3 {
		t.Fatalf("NumExecutors = %d, want 3", got)
	}
}
