package spark

import (
	"fmt"

	"sparkdbscan/internal/rng"
	"sparkdbscan/internal/simtime"
)

// FaultProfile injects deterministic faults into Virtual-mode stages:
// task-attempt failures, slow tasks, and executor crashes. Every draw
// is a pure function of (Seed, stage, partition/executor, attempt), so
// a profile produces the exact same fault schedule on every run — the
// property the end-to-end tests rely on to assert that faults move
// time but never labels.
type FaultProfile struct {
	// Seed drives all fault draws. Two profiles with the same rates
	// but different seeds produce different schedules.
	Seed uint64
	// TaskFailRate in [0, 1) is the per-attempt probability that a
	// task attempt fails at a deterministic point partway through.
	// The final permitted attempt never fails, so jobs always
	// complete: the profile models recoverable faults, not doomed
	// tasks (use Config.FailureInjector for those).
	TaskFailRate float64
	// SlowRate in [0, 1] is the per-task probability of a slow event
	// (cgroup throttling, sick disk) stretching the task by
	// SlowFactor.
	SlowRate float64
	// SlowFactor multiplies a slow task's duration. Default 4.
	SlowFactor float64
	// ExecutorCrashRate in [0, 1] is the per-stage, per-executor
	// probability that the executor crashes once during the stage,
	// killing every attempt on its cores.
	ExecutorCrashRate float64
	// RetryBackoff is the scheduler delay before a failed attempt's
	// retry launches. Zero means the 0.1 s default (Spark's
	// locality-wait-scale resubmission latency); negative means no
	// backoff. The same convention — simtime.DefaultedBackoff — governs
	// hdfs.StorageFaultProfile.RetryBackoff.
	RetryBackoff float64
	// CrashPointFrac is how far through its duration the crash-
	// triggering attempt gets, in (0, 1). Default 0.5.
	CrashPointFrac float64
	// MaxExecutorFailures blacklists an executor once this many failed
	// attempts have run on its cores across the application
	// (spark.blacklist.application.maxFailedTasksPerExecutor).
	// 0 disables blacklisting. The last live executor is never
	// blacklisted.
	MaxExecutorFailures int
}

func (p *FaultProfile) withDefaults() *FaultProfile {
	q := *p
	if q.SlowFactor <= 1 {
		q.SlowFactor = 4
	}
	q.RetryBackoff = simtime.DefaultedBackoff(q.RetryBackoff, 0.1)
	if q.CrashPointFrac <= 0 || q.CrashPointFrac >= 1 {
		q.CrashPointFrac = 0.5
	}
	return &q
}

// Draw domains, mixed into the hash so the task-fail, slow, crash, and
// fail-point streams are independent.
const (
	drawTaskFail uint64 = 0xfa17 + iota
	drawSlow
	drawCrash
	drawFailPoint
)

// draw returns a uniform [0,1) value, a pure function of its inputs.
func (p *FaultProfile) draw(kind uint64, stage, a, b int) float64 {
	x := p.Seed ^ kind ^ uint64(stage)*0x9e3779b97f4a7c15 ^
		uint64(a)*0xbf58476d1ce4e5b9 ^ uint64(b)*0x94d049bb133111eb
	return float64(rng.Hash64(x)>>11) / (1 << 53)
}

// failsAttempt reports whether attempt of (stage, partition) fails.
// The final permitted attempt never does.
func (p *FaultProfile) failsAttempt(stage, partition, attempt, maxRetries int) bool {
	if attempt >= maxRetries-1 {
		return false
	}
	return p.draw(drawTaskFail, stage, partition, attempt) < p.TaskFailRate
}

// failPointFrac is how far through the attempt's duration the failure
// strikes, in [0.1, 0.9): a fault never dies instantly nor at the very
// end.
func (p *FaultProfile) failPointFrac(stage, partition, attempt int) float64 {
	return 0.1 + 0.8*p.draw(drawFailPoint, stage, partition, attempt)
}

// slowFactor returns the stretch applied to (stage, partition): 1 when
// the task dodged the slow event, SlowFactor otherwise.
func (p *FaultProfile) slowFactor(stage, partition int) float64 {
	if p.SlowRate > 0 && p.draw(drawSlow, stage, partition, 0) < p.SlowRate {
		return p.SlowFactor
	}
	return 1
}

// crashedExecutors returns the executors that crash during stage.
func (p *FaultProfile) crashedExecutors(stage, numExec int) []int {
	if p.ExecutorCrashRate <= 0 {
		return nil
	}
	var out []int
	for e := 0; e < numExec; e++ {
		if p.draw(drawCrash, stage, e, 0) < p.ExecutorCrashRate {
			out = append(out, e)
		}
	}
	return out
}

// BlacklistEvent records an executor being excluded from scheduling
// after accumulating too many task failures.
type BlacklistEvent struct {
	Stage    int // stage whose failures crossed the threshold
	Executor int
	Failures int // failed attempts attributed to the executor so far
}

func (e BlacklistEvent) String() string {
	return fmt.Sprintf("stage %d: executor %d blacklisted after %d task failures",
		e.Stage, e.Executor, e.Failures)
}

// errInjectedFault marks failures synthesized by a FaultProfile.
type errInjectedFault struct {
	stage, partition, attempt int
}

func (e *errInjectedFault) Error() string {
	return fmt.Sprintf("spark: injected fault (stage %d, partition %d, attempt %d)",
		e.stage, e.partition, e.attempt)
}
