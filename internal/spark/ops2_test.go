package spark

import (
	"sort"
	"strconv"
	"strings"
	"testing"

	"sparkdbscan/internal/hdfs"
)

func TestCoalesce(t *testing.T) {
	ctx := NewContext(Config{Cores: 2})
	rdd := Parallelize(ctx, intRange(100), 10)
	co := rdd.Coalesce(3)
	if co.NumPartitions() != 3 {
		t.Fatalf("partitions = %d", co.NumPartitions())
	}
	got, err := co.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("lost elements: %d", len(got))
	}
	// Coalesce preserves order (consecutive groups).
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
	// Coalescing up is a no-op.
	if rdd.Coalesce(20) != rdd {
		t.Fatal("coalesce up did not return the same RDD")
	}
}

func TestRepartition(t *testing.T) {
	ctx := NewContext(Config{Cores: 2})
	rdd := Parallelize(ctx, intRange(60), 2)
	re := Repartition(rdd, 6)
	if re.NumPartitions() != 6 {
		t.Fatalf("partitions = %d", re.NumPartitions())
	}
	got, err := re.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if len(got) != 60 || got[0] != 0 || got[59] != 59 {
		t.Fatalf("repartition lost data: %d elements", len(got))
	}
	// Balance: no output partition should hold everything.
	counts, err := runStage(ctx, "count", 6, func(split int, tc *TaskContext) (int, error) {
		part, err := re.materialize(split, tc)
		return len(part), err
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range counts {
		if c == 60 {
			t.Fatalf("repartition did not spread: %v", counts)
		}
	}
}

func TestAggregateByKey(t *testing.T) {
	ctx := NewContext(Config{Cores: 2})
	var pairs []Pair[string, int]
	for i := 0; i < 30; i++ {
		pairs = append(pairs, Pair[string, int]{Key: []string{"a", "b", "c"}[i%3], Value: i})
	}
	rdd := Parallelize(ctx, pairs, 4)
	// Aggregate to (count, sum) per key.
	type agg struct{ count, sum int }
	out, err := AggregateByKey(rdd,
		func() agg { return agg{} },
		func(a agg, v int) agg { return agg{a.count + 1, a.sum + v} },
		func(a, b agg) agg { return agg{a.count + b.count, a.sum + b.sum} },
		2).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d keys", len(out))
	}
	for _, p := range out {
		if p.Value.count != 10 {
			t.Fatalf("key %s count %d", p.Key, p.Value.count)
		}
	}
	total := 0
	for _, p := range out {
		total += p.Value.sum
	}
	if total != 435 { // sum 0..29
		t.Fatalf("total = %d", total)
	}
}

func TestSaveAsTextFile(t *testing.T) {
	ctx := NewContext(Config{Cores: 2})
	fs := hdfs.New(64, 1)
	rdd := Parallelize(ctx, intRange(50), 5)
	err := SaveAsTextFile(rdd, fs, "out/values.txt", func(v int) string {
		return strconv.Itoa(v * 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := fs.Read("out/values.txt", nil)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 50 || lines[0] != "0" || lines[49] != "98" {
		t.Fatalf("saved file wrong: %d lines, first %q last %q", len(lines), lines[0], lines[len(lines)-1])
	}
	// The write was charged to the driver.
	if rep := ctx.Report(); rep.DriverWork.HDFSBytes == 0 {
		t.Fatal("HDFS write not charged")
	}
}
