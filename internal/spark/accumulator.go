package spark

import (
	"fmt"
	"sync"
)

// Accumulator is Spark's write-only shared variable: tasks only Add to
// it, the driver only reads it, and updates are merged with an
// associative operation. The paper uses an accumulator to "bring back
// the partial clusters" from executors to the driver (§IV-B).
//
// Semantics mirror Spark's guarantee for accumulators updated inside
// actions: updates from a task attempt are buffered in the TaskContext
// and merged into the driver value only when that attempt succeeds, so
// retried tasks never double-count.
type Accumulator[T any] struct {
	id    int
	ctx   *Context
	merge func(T, T) T
}

// accumulatorState is the type-erased driver-side value, stored on the
// Context so commitAccUpdates can merge without knowing T.
type accumulatorState struct {
	mu       sync.Mutex
	value    any
	merge    func(cur, upd any) any
	onCommit func(upd any)
}

// NewAccumulator registers an accumulator with initial value zero and
// the associative merge function merge.
func NewAccumulator[T any](ctx *Context, zero T, merge func(T, T) T) *Accumulator[T] {
	ctx.mu.Lock()
	id := ctx.nextAccID
	ctx.nextAccID++
	ctx.accs[id] = &accumulatorState{
		value: zero,
		merge: func(cur, upd any) any { return merge(cur.(T), upd.(T)) },
	}
	ctx.mu.Unlock()
	return &Accumulator[T]{id: id, ctx: ctx, merge: merge}
}

// Add stages v for merging. It must be called from inside a task (with
// that task's TaskContext); multiple Adds from one attempt pre-merge
// locally, matching Spark's per-task accumulator buffers.
func (a *Accumulator[T]) Add(tc *TaskContext, v T) {
	for i := range tc.accUpdates {
		if tc.accUpdates[i].id == a.id {
			tc.accUpdates[i].value = a.merge(tc.accUpdates[i].value.(T), v)
			return
		}
	}
	tc.accUpdates = append(tc.accUpdates, stagedAccUpdate{id: a.id, value: v})
}

// OnCommit registers f to observe every committed update, invoked under
// the accumulator's lock immediately after the update is merged. The
// callback therefore sees updates in exactly the order they land in the
// driver value — the property the core runner's journal depends on:
// replaying the observed sequence reproduces the accumulator's slice
// order byte for byte. f must be fast and must not touch the
// accumulator. Register before the action runs; at most one callback.
func (a *Accumulator[T]) OnCommit(f func(upd T)) {
	a.ctx.mu.Lock()
	st := a.ctx.accs[a.id]
	a.ctx.mu.Unlock()
	st.mu.Lock()
	st.onCommit = func(upd any) { f(upd.(T)) }
	st.mu.Unlock()
}

// Value returns the merged driver-side value. Call it only after the
// action that updates the accumulator has completed.
func (a *Accumulator[T]) Value() T {
	a.ctx.mu.Lock()
	st := a.ctx.accs[a.id]
	a.ctx.mu.Unlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.value.(T)
}

// commitAccUpdates merges a successful attempt's staged updates into
// the driver values.
func (c *Context) commitAccUpdates(tc *TaskContext) {
	for _, upd := range tc.accUpdates {
		c.mu.Lock()
		st, ok := c.accs[upd.id]
		c.mu.Unlock()
		if !ok {
			panic(fmt.Sprintf("spark: update for unknown accumulator %d", upd.id))
		}
		st.mu.Lock()
		st.value = st.merge(st.value, upd.value)
		if st.onCommit != nil {
			st.onCommit(upd.value)
		}
		st.mu.Unlock()
	}
}

// CounterAccumulator is the classic int64 counter.
func CounterAccumulator(ctx *Context) *Accumulator[int64] {
	return NewAccumulator(ctx, 0, func(a, b int64) int64 { return a + b })
}

// SliceAccumulator collects elements; the merge concatenates. This is
// the shape the DBSCAN runner uses to return partial clusters. The
// merge appends in place: the driver value is owned exclusively by the
// accumulator (mutated only under its lock, read once after the
// action), so growing it amortizes to O(total) bytes across K commits
// instead of the O(K²) a copy-per-commit merge costs — see
// BenchmarkSliceAccumulatorCommits.
func SliceAccumulator[E any](ctx *Context) *Accumulator[[]E] {
	return NewAccumulator(ctx, nil, func(a, b []E) []E {
		return append(a, b...)
	})
}
