package spark

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"sparkdbscan/internal/hdfs"
	"sparkdbscan/internal/simtime"
)

func linesFixture(n int) (string, []string) {
	var sb strings.Builder
	var want []string
	for i := 0; i < n; i++ {
		line := fmt.Sprintf("line-%04d pad %s", i, strings.Repeat("x", i%17))
		want = append(want, line)
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String(), want
}

func TestTextFileLinesExactlyOnce(t *testing.T) {
	content, want := linesFixture(200)
	// Lines are at most 30 bytes; every block size here exceeds that.
	for _, blockSize := range []int{32, 57, 64, 100, 1 << 20} {
		fs := hdfs.New(blockSize, 1)
		if err := fs.Write("f.txt", []byte(content), nil); err != nil {
			t.Fatal(err)
		}
		ctx := NewContext(Config{Cores: 2})
		rdd, err := TextFileLines(ctx, fs, "f.txt")
		if err != nil {
			t.Fatal(err)
		}
		got, err := rdd.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("bs=%d: %d lines, want %d", blockSize, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("bs=%d: line %d = %q, want %q", blockSize, i, got[i], want[i])
			}
		}
	}
}

func TestTextFileLinesBoundaryProperty(t *testing.T) {
	// Property: any block size >= the longest line reproduces the file
	// exactly once, in order, regardless of where boundaries fall.
	content, want := linesFixture(60)
	maxLine := 0
	for _, l := range want {
		if len(l)+1 > maxLine {
			maxLine = len(l) + 1
		}
	}
	check := func(bsRaw uint16) bool {
		bs := maxLine + int(bsRaw%200)
		fs := hdfs.New(bs, 1)
		if err := fs.Write("f.txt", []byte(content), nil); err != nil {
			return false
		}
		ctx := NewContext(Config{Cores: 1})
		rdd, err := TextFileLines(ctx, fs, "f.txt")
		if err != nil {
			return false
		}
		got, err := rdd.Collect()
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTextFileLinesNoTrailingNewline(t *testing.T) {
	fs := hdfs.New(8, 1)
	if err := fs.Write("f.txt", []byte("alpha\nbeta\ngamma"), nil); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(Config{Cores: 1})
	rdd, err := TextFileLines(ctx, fs, "f.txt")
	if err != nil {
		t.Fatal(err)
	}
	got, err := rdd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != "gamma" {
		t.Fatalf("got %q", got)
	}
}

func TestTextFileLinesTooLongLine(t *testing.T) {
	fs := hdfs.New(8, 1)
	if err := fs.Write("f.txt", []byte(strings.Repeat("a", 40)+"\nshort\n"), nil); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(Config{Cores: 1})
	rdd, err := TextFileLines(ctx, fs, "f.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rdd.Collect(); err == nil {
		t.Fatal("line longer than a block accepted")
	}
}

func TestTextFileLinesMissingFile(t *testing.T) {
	ctx := NewContext(Config{Cores: 1})
	if _, err := TextFileLines(ctx, hdfs.New(8, 1), "missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestTextFileLinesUnderStorageFaults(t *testing.T) {
	// Input ingestion routes through the replica-aware read path: with
	// an aggressive storage-fault profile the tasks pay failover cost
	// but recover every line exactly once, byte-identical to clean.
	content, want := linesFixture(200)
	fs := hdfs.New(64, 3)
	if err := fs.Write("f.txt", []byte(content), nil); err != nil {
		t.Fatal(err)
	}
	fs.SetFaultProfile(&hdfs.StorageFaultProfile{Seed: 17, CorruptRate: 0.5, DatanodeCrashRate: 0.3})
	ctx := NewContext(Config{Cores: 2})
	rdd, err := TextFileLines(ctx, fs, "f.txt")
	if err != nil {
		t.Fatal(err)
	}
	got, err := rdd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d lines, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d corrupted: %q vs %q", i, got[i], want[i])
		}
	}
	if st := fs.Stats(); st.ChecksumFailures == 0 && st.DeadNodeProbes == 0 {
		t.Fatal("profile produced no storage-fault events")
	}
	rep := ctx.Report()
	var w simtime.Work
	for _, s := range rep.Stages {
		w.Add(s.Work)
	}
	if w.StorageRetries == 0 || w.ChecksumBytes == 0 {
		t.Fatalf("failover cost not metered into task work: %+v", w)
	}
}
