package spark

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"sparkdbscan/internal/simtime"
)

// Pair is a keyed element for wide (shuffle) operations.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// hashKey maps an arbitrary comparable key to a bucket hash. Common key
// types take a fast path; everything else goes through fmt.
func hashKey(k any) uint64 {
	switch v := k.(type) {
	case int:
		return mix64(uint64(v))
	case int32:
		return mix64(uint64(uint32(v)))
	case int64:
		return mix64(uint64(v))
	case uint64:
		return mix64(v)
	case string:
		h := fnv.New64a()
		_, _ = h.Write([]byte(v))
		return h.Sum64()
	default:
		h := fnv.New64a()
		fmt.Fprintf(h, "%v", v)
		return h.Sum64()
	}
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// shuffleExchange holds the materialized map-side output of one wide
// dependency: buckets[mapPartition][reducePartition].
type shuffleExchange[K comparable, V any] struct {
	once    sync.Once
	err     error
	buckets [][][]Pair[K, V]
}

// runMapSide executes the shuffle's map-side stage: each parent
// partition is hashed into reduceParts buckets, with optional map-side
// combining. The shuffle write (serialize + local disk) is charged to
// the map tasks; the remote read is charged to the reduce-side tasks in
// the child RDD's compute.
func runMapSide[K comparable, V any](r *RDD[Pair[K, V]], ex *shuffleExchange[K, V],
	reduceParts int, combine func(V, V) V, opName string) error {
	ex.once.Do(func() {
		if err := r.runPrepare(); err != nil {
			ex.err = err
			return
		}
		out, err := runStage(r.ctx, r.name+"."+opName+".mapSide", r.parts,
			func(split int, tc *TaskContext) ([][]Pair[K, V], error) {
				in, err := r.materialize(split, tc)
				if err != nil {
					return nil, err
				}
				buckets := make([][]Pair[K, V], reduceParts)
				if combine != nil {
					combined := make(map[K]V, len(in))
					var w simtime.Work
					for _, p := range in {
						w.HashOps++
						if cur, ok := combined[p.Key]; ok {
							combined[p.Key] = combine(cur, p.Value)
						} else {
							combined[p.Key] = p.Value
						}
					}
					for k, v := range combined {
						b := int(hashKey(k) % uint64(reduceParts))
						buckets[b] = append(buckets[b], Pair[K, V]{k, v})
					}
					tc.Charge(w)
				} else {
					for _, p := range in {
						b := int(hashKey(p.Key) % uint64(reduceParts))
						buckets[b] = append(buckets[b], p)
					}
				}
				var w simtime.Work
				for _, b := range buckets {
					for _, p := range b {
						sz := r.elemSize(p)
						w.SerBytes += sz
						w.DiskWriteBytes += sz // shuffle spill to local disk
					}
				}
				w.Elems += int64(len(in))
				tc.Charge(w)
				return buckets, nil
			})
		if err != nil {
			ex.err = err
			return
		}
		ex.buckets = out
	})
	return ex.err
}

// ReduceByKey merges all values sharing a key with reduce (associative
// and commutative), producing an RDD with reduceParts partitions. This
// is the canonical wide operation — the shuffle the paper's design goes
// out of its way to avoid, implemented here so its cost can be measured
// (see the broadcast-vs-shuffle ablation).
func ReduceByKey[K comparable, V any](r *RDD[Pair[K, V]], reduce func(V, V) V,
	reduceParts int) *RDD[Pair[K, V]] {
	if reduceParts < 1 {
		reduceParts = r.parts
	}
	ex := &shuffleExchange[K, V]{}
	out := newRDD[Pair[K, V]](r.ctx, r.name+".reduceByKey", reduceParts, nil)
	out.inheritSize(r)
	out.prepare = func() error { return runMapSide(r, ex, reduceParts, reduce, "reduceByKey") }
	out.compute = func(split int, tc *TaskContext) ([]Pair[K, V], error) {
		merged := make(map[K]V)
		var w simtime.Work
		for mapPart := range ex.buckets {
			for _, p := range ex.buckets[mapPart][split] {
				sz := r.elemSize(p)
				w.DiskReadBytes += sz // remote executor reads the spill
				w.NetBytes += sz
				w.HashOps++
				if cur, ok := merged[p.Key]; ok {
					merged[p.Key] = reduce(cur, p.Value)
				} else {
					merged[p.Key] = p.Value
				}
			}
		}
		tc.Charge(w)
		res := make([]Pair[K, V], 0, len(merged))
		for k, v := range merged {
			res = append(res, Pair[K, V]{k, v})
		}
		return res, nil
	}
	return out
}

// GroupByKey gathers all values per key (no map-side combine, like
// Spark's groupByKey: the full data volume crosses the wire).
func GroupByKey[K comparable, V any](r *RDD[Pair[K, V]], reduceParts int) *RDD[Pair[K, []V]] {
	if reduceParts < 1 {
		reduceParts = r.parts
	}
	ex := &shuffleExchange[K, V]{}
	out := newRDD[Pair[K, []V]](r.ctx, r.name+".groupByKey", reduceParts, nil)
	out.prepare = func() error { return runMapSide(r, ex, reduceParts, nil, "groupByKey") }
	out.compute = func(split int, tc *TaskContext) ([]Pair[K, []V], error) {
		grouped := make(map[K][]V)
		var w simtime.Work
		for mapPart := range ex.buckets {
			for _, p := range ex.buckets[mapPart][split] {
				sz := r.elemSize(p)
				w.DiskReadBytes += sz
				w.NetBytes += sz
				w.HashOps++
				grouped[p.Key] = append(grouped[p.Key], p.Value)
			}
		}
		tc.Charge(w)
		res := make([]Pair[K, []V], 0, len(grouped))
		for k, vs := range grouped {
			res = append(res, Pair[K, []V]{k, vs})
		}
		return res, nil
	}
	return out
}

// SortedCollectByKey is a test/report helper: Collect a pair RDD and
// return it sorted by the string form of its keys, for deterministic
// assertions.
func SortedCollectByKey[K comparable, V any](r *RDD[Pair[K, V]]) ([]Pair[K, V], error) {
	out, err := r.Collect()
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		return fmt.Sprint(out[i].Key) < fmt.Sprint(out[j].Key)
	})
	return out, nil
}
