package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned when a query is shed. Shedding early is
// the backpressure mechanism — under sustained overload the server
// keeps answering the queries it can within their deadlines instead of
// letting every response time grow without bound. The concrete causes
// are distinguishable (all wrap this error): ErrShedEnqueue,
// ErrShedDeadline and ErrShedBrownout.
var ErrOverloaded = errors.New("serve: overloaded")

// The three shed causes, for the error taxonomy: a full admission
// queue, a missed queue-delay deadline discovered at dequeue, and a
// priority shed while the server is degraded or browned out. Each
// satisfies errors.Is(err, ErrOverloaded).
var (
	ErrShedEnqueue  = fmt.Errorf("%w: admission queue full", ErrOverloaded)
	ErrShedDeadline = fmt.Errorf("%w: queue delay budget exceeded", ErrOverloaded)
	ErrShedBrownout = fmt.Errorf("%w: shed by priority while degraded", ErrOverloaded)
)

// ErrClosed is returned for queries issued to (or stranded in) a
// server that has been closed.
var ErrClosed = errors.New("serve: server closed")

// ErrPanicked is returned for a query whose computation panicked. The
// panic is confined to the query: the worker recovers, answers, and
// keeps serving — one poisoned request costs one error response, not
// the process.
var ErrPanicked = errors.New("serve: query panicked")

// Options configures a Server. The zero value picks sensible defaults.
type Options struct {
	// Workers is the number of serving goroutines (default: GOMAXPROCS).
	// Each worker owns one shard of the admission queue.
	Workers int
	// BatchCap caps the micro-batch: a worker that wakes up drains at
	// most this many queued queries and answers them in one kd-tree
	// traversal batch. 1 disables batching (every query is a single
	// dispatch); the default is 32. Batching is adaptive — a worker
	// never waits to fill a batch, it takes whatever is queued.
	BatchCap int
	// QueueCap bounds the admission queue across all shards; a query
	// arriving when every shard is full is rejected with ErrOverloaded.
	// Default: Workers * BatchCap * 4.
	QueueCap int
	// MaxQueueDelay is the default per-query deadline measured from
	// enqueue: a query a worker dequeues later than this is shed with
	// ErrOverloaded rather than answered late. An earlier context
	// deadline on the request takes precedence. Default 100ms;
	// negative disables deadline shedding (and, with it, the health
	// ladder — there is no delay budget to defend).
	MaxQueueDelay time.Duration

	// StallTimeout is how long a busy worker may go without a
	// heartbeat before the supervisor presumes it stuck, deposes it,
	// and spawns a replacement on the same shard. Dead workers (a
	// panic that escaped the per-batch recover) are respawned at the
	// same cadence. Default 20ms; negative disables supervision — a
	// dead worker then starves its shard, which is the contrast arm
	// BENCH_chaos measures.
	StallTimeout time.Duration
	// SupervisorInterval is the supervisor's scan period. Default
	// StallTimeout/4, floored at 1ms.
	SupervisorInterval time.Duration

	// Hedge enables hedged requests: a query still unanswered after
	// the hedge delay (HedgeDelay fixed, or adaptive p99-based when 0)
	// is re-dispatched to another shard and the first answer wins.
	// Hedging engages only while the server is Healthy and is bounded
	// by the retry budget below, so it can never amplify an overload.
	Hedge bool
	// HedgeDelay fixes the hedge delay; 0 tracks the completed-latency
	// p99 adaptively. Negative is invalid (disable with Hedge=false).
	HedgeDelay time.Duration
	// HedgeBudget is the retry budget's refill ratio: each completed
	// primary request earns this fraction of a hedge token. Default
	// 0.1 — hedges are at most ~10% of completed traffic.
	HedgeBudget float64
	// HedgeBurst is the token bucket's capacity (and initial fill).
	// Default 32.
	HedgeBurst int

	// DegradeAt and BrownoutAt are the queue-delay EWMA thresholds of
	// the health ladder, as fractions of MaxQueueDelay. Defaults 0.5
	// and 0.9. Degraded halves the effective queue-delay budget and
	// sheds PriorityLow at admission; BrownedOut quarters it and
	// serves only PriorityHigh.
	DegradeAt  float64
	BrownoutAt float64

	// Chaos injects deterministic faults into the workers (nil: none).
	// See ChaosProfile; meant for tests and BENCH_chaos, never
	// production.
	Chaos *ChaosProfile
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.BatchCap <= 0 {
		o.BatchCap = 32
	}
	if o.QueueCap <= 0 {
		o.QueueCap = o.Workers * o.BatchCap * 4
	}
	if o.MaxQueueDelay == 0 {
		o.MaxQueueDelay = 100 * time.Millisecond
	}
	if o.StallTimeout == 0 {
		o.StallTimeout = 20 * time.Millisecond
	}
	if o.SupervisorInterval <= 0 {
		o.SupervisorInterval = o.StallTimeout / 4
		if o.SupervisorInterval < time.Millisecond {
			o.SupervisorInterval = time.Millisecond
		}
	}
	if o.HedgeBudget <= 0 {
		o.HedgeBudget = 0.1
	}
	if o.HedgeBurst <= 0 {
		o.HedgeBurst = 32
	}
	if o.DegradeAt <= 0 {
		o.DegradeAt = 0.5
	}
	if o.BrownoutAt <= 0 {
		o.BrownoutAt = 0.9
	}
	if o.Chaos != nil {
		o.Chaos = o.Chaos.withDefaults()
	}
	return o
}

// liveModel pairs a snapshot with its generation so one atomic load
// gives workers a consistent (snapshot, generation) view per batch.
type liveModel struct {
	s   Snapshot
	gen uint64
}

type result struct {
	a   Assignment
	err error
}

// request is one dispatch of a query. A hedged query has two request
// values sharing done and resp: whichever dispatch resolves it first
// wins the CAS on done and delivers; the loser's work is discarded.
type request struct {
	q        []float64
	ctx      context.Context
	enq      time.Time
	deadline time.Time // zero: no deadline
	pri      Priority
	hedge    bool // this dispatch is the hedged re-dispatch
	shard    int  // which shard admitted it (written by tryEnqueue)
	done     *atomic.Bool
	resp     chan result
}

// Server answers cluster-assignment queries against a hot-swappable
// Model snapshot. Create one with NewServer, query it with Assign (or
// AssignPriority) from any number of goroutines, replace the model
// with Swap, and stop it with Drain (graceful) or Close (abrupt).
type Server struct {
	opts   Options
	cur    atomic.Pointer[liveModel]
	gen    atomic.Uint64
	swapMu sync.Mutex

	shards  []chan *request
	workers []*workerState
	rr      atomic.Uint64 // round-robin admission cursor
	stats   *collector

	admitted atomic.Uint64 // queries accepted into a shard
	resolved atomic.Uint64 // queries whose outcome was decided (done CAS won)

	health      atomic.Int32
	qdelay      atomic.Uint64 // queue-delay EWMA, float64 bits of nanoseconds
	hedgeNs     atomic.Int64  // adaptive hedge delay
	hedgeTokens atomic.Int64  // retry budget, milli-tokens

	mu     sync.RWMutex // guards closed vs. in-flight enqueues and respawns
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// NewServer starts a serving pool over snap (a frozen *Model or any
// other Snapshot, e.g. a live model's serving view). The caller must
// Close (or Drain) it.
func NewServer(snap Snapshot, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		shards:  make([]chan *request, opts.Workers),
		workers: make([]*workerState, opts.Workers),
		stats:   newCollector(opts.BatchCap),
		done:    make(chan struct{}),
	}
	s.gen.Store(1)
	s.cur.Store(&liveModel{s: snap, gen: 1})
	s.hedgeNs.Store(int64(hedgeDelayInit))
	s.hedgeTokens.Store(int64(opts.HedgeBurst) * milliToken)
	perShard := (opts.QueueCap + opts.Workers - 1) / opts.Workers
	if perShard < 1 {
		perShard = 1
	}
	for i := range s.shards {
		s.shards[i] = make(chan *request, perShard)
		w := &workerState{id: i, shard: s.shards[i]}
		w.beatNow()
		s.workers[i] = w
		s.wg.Add(1)
		go s.runWorker(w, 0)
	}
	s.wg.Add(1)
	go s.supervise()
	return s
}

// Assign answers one query at PriorityNormal, blocking until a worker
// responds, the context is done, or the query is shed. q must have the
// model's dimensionality and must not be mutated until Assign returns.
func (s *Server) Assign(ctx context.Context, q []float64) (Assignment, error) {
	return s.AssignPriority(ctx, q, PriorityNormal)
}

// AssignPriority is Assign with an explicit priority. Priority only
// matters while the server is shedding: Degraded sheds PriorityLow at
// admission, BrownedOut sheds everything below PriorityHigh — load is
// traded away in value order before anyone is shed indiscriminately.
func (s *Server) AssignPriority(ctx context.Context, q []float64, pri Priority) (Assignment, error) {
	noise := Assignment{Cluster: Noise}
	if d := s.cur.Load().s.Dim(); len(q) != d {
		return noise, fmt.Errorf("serve: query has %d coordinates, model wants %d", len(q), d)
	}

	// Graceful degradation: shed by priority before capacity does it
	// indiscriminately, and tighten the queue-delay budget so the
	// queries we do admit are answered while their answers are useful.
	health := s.HealthState()
	if pri < PriorityHigh {
		if health == HealthBrownedOut || (health == HealthDegraded && pri < PriorityNormal) {
			s.stats.shedPriority.Add(1)
			return noise, ErrShedBrownout
		}
	}
	maxDelay := s.opts.MaxQueueDelay
	switch health {
	case HealthDegraded:
		maxDelay /= 2
	case HealthBrownedOut:
		maxDelay /= 4
	}

	req := &request{
		q:    q,
		ctx:  ctx,
		enq:  time.Now(),
		pri:  pri,
		done: new(atomic.Bool),
		resp: make(chan result, 1),
	}
	if maxDelay > 0 {
		req.deadline = req.enq.Add(maxDelay)
	}
	if cd, ok := ctx.Deadline(); ok && (req.deadline.IsZero() || cd.Before(req.deadline)) {
		req.deadline = cd
	}

	if ok, closed := s.tryEnqueue(req, -1); !ok {
		if closed {
			return noise, ErrClosed
		}
		s.stats.shedEnq.Add(1)
		return noise, ErrShedEnqueue
	}
	s.admitted.Add(1)

	// Hedging: if the primary dispatch hasn't answered within the
	// hedge delay and the retry budget has a token, re-dispatch to
	// another shard and take whichever answer comes first. Only while
	// Healthy — under degradation extra dispatches are fuel on the fire.
	if s.opts.Hedge && health == HealthHealthy {
		timer := time.NewTimer(s.hedgeDelay())
		select {
		case r := <-req.resp:
			timer.Stop()
			return r.a, r.err
		case <-ctx.Done():
			timer.Stop()
			return noise, ctx.Err()
		case <-timer.C:
			if !s.takeHedgeToken() {
				s.stats.hedgeDenied.Add(1)
				break
			}
			hedge := &request{
				q:        req.q,
				ctx:      req.ctx,
				enq:      req.enq,
				deadline: req.deadline,
				pri:      req.pri,
				hedge:    true,
				done:     req.done,
				resp:     req.resp,
			}
			if ok, _ := s.tryEnqueue(hedge, req.shard); ok {
				s.stats.hedges.Add(1)
			} else {
				s.stats.hedgeDenied.Add(1)
			}
		}
	}

	select {
	case r := <-req.resp:
		return r.a, r.err
	case <-ctx.Done():
		// The worker (or shutdown's drain) still resolves the request
		// through the done CAS; nobody blocks on an abandoned request.
		return noise, ctx.Err()
	}
}

// enqueueStaleAfter is the heartbeat age past which a busy worker is
// treated as not making progress for admission scoring: long enough
// that no healthy micro-batch trips it, short against any fault worth
// routing around.
const enqueueStaleAfter = int64(time.Millisecond)

// tryEnqueue admits a request to the shard where it is likeliest to be
// served promptly, skipping avoid (pass -1 to consider every shard; a
// hedge passes its primary's shard — re-dispatching behind the same
// possibly-stuck worker would race nothing). Shards are scored by
// queue length, with a large penalty for workers that look stuck —
// flagged dead, or busy with a stale heartbeat — so admission is
// fault-aware with no explicit routing table: a stalled worker's shard
// loses to any healthy one even while its queue is empty, and work
// flows around the fault. The rotating start breaks ties so idle
// shards share the load. All usable shards full means the pool is at
// least QueueCap queries behind — shed now rather than queue a query
// that would miss its deadline anyway. The read lock pairs with
// shutdown's write lock so no enqueue can race past the final drain.
func (s *Server) tryEnqueue(req *request, avoid int) (ok, closed bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false, true
	}
	now := time.Now().UnixNano()
	start := int(s.rr.Add(1))
	best, bestScore := -1, int(^uint(0)>>1)
	for i := 0; i < len(s.shards); i++ {
		idx := (start + i) % len(s.shards)
		if idx == avoid && len(s.shards) > 1 {
			continue
		}
		w := s.workers[idx]
		score := len(s.shards[idx])
		if w.dead.Load() || (w.busy.Load() > 0 && now-w.beat.Load() > enqueueStaleAfter) {
			score += s.opts.QueueCap
		}
		if score < bestScore {
			best, bestScore = idx, score
		}
	}
	if best >= 0 {
		req.shard = best // before the send: the request is shared after it
		select {
		case s.shards[best] <- req:
			return true, false
		default:
		}
	}
	// The shortest queue filled between the scan and the send: fall
	// back to the first non-avoided shard with room.
	for i := 0; i < len(s.shards); i++ {
		idx := (start + i) % len(s.shards)
		if idx == avoid && len(s.shards) > 1 {
			continue
		}
		req.shard = idx
		select {
		case s.shards[idx] <- req:
			return true, false
		default:
		}
	}
	return false, false
}

// deliver resolves a request with res iff no other dispatch has: the
// CAS on done makes the first resolver win and everything later a
// no-op, which is what lets a query be answered by its primary, its
// hedge, a worker's panic recovery, or shutdown — whichever gets there
// first — exactly once.
func (s *Server) deliver(r *request, res result) bool {
	if !r.done.CompareAndSwap(false, true) {
		return false
	}
	s.resolved.Add(1)
	r.resp <- res
	return true
}

// deliverErr resolves a request with an error, bumping counter on win.
func (s *Server) deliverErr(r *request, err error, counter *atomic.Uint64) {
	if s.deliver(r, result{a: Assignment{Cluster: Noise}, err: err}) {
		counter.Add(1)
	}
}

// workerBufs are one worker goroutine's scratch buffers.
type workerBufs struct {
	batch []*request
	live  []*request
	qbuf  []float64
	abuf  []Assignment
	nbrs  []int32
}

// workerIdleBeat bounds how long an idle worker goes between epoch
// checks and heartbeats, so deposed goroutines exit promptly.
const workerIdleBeat = 5 * time.Millisecond

// runWorker is one worker goroutine's life: dequeue, micro-batch,
// answer; epoch tells it when it has been deposed by the supervisor.
func (s *Server) runWorker(w *workerState, epoch uint64) {
	defer s.wg.Done()
	bufs := &workerBufs{
		batch: make([]*request, 0, s.opts.BatchCap),
		live:  make([]*request, 0, s.opts.BatchCap),
		qbuf:  make([]float64, 0, s.opts.BatchCap*8),
		abuf:  make([]Assignment, s.opts.BatchCap),
	}
	for {
		if w.epoch.Load() != epoch {
			return // deposed: a replacement owns this shard now
		}
		w.beatNow()
		var first *request
		select {
		case first = <-w.shard:
		case <-s.done:
			return
		case <-time.After(workerIdleBeat):
			continue
		}
		if !s.processBatch(w, first, bufs) {
			return
		}
	}
}

// processBatch drains and answers one micro-batch. It returns false
// when the goroutine must die: server shutdown mid-stall, or a panic
// that escaped the per-request recover (then the last-gasp recover
// answers the batch with ErrPanicked and flags the worker dead for
// the supervisor — the process never dies with it).
func (s *Server) processBatch(w *workerState, first *request, bufs *workerBufs) (alive bool) {
	w.busy.Add(1)
	var pending []*request
	defer func() {
		w.busy.Add(-1)
		if r := recover(); r != nil {
			for _, req := range pending {
				s.deliverErr(req, ErrPanicked, &s.stats.panicked)
			}
			s.stats.workerDeaths.Add(1)
			w.dead.Store(true)
			alive = false
		}
	}()

	batch := append(bufs.batch[:0], first)
	batchCap := s.opts.BatchCap
	if batchCap > 1 && len(w.shard) == 0 {
		// The first dequeue usually arrives by direct handoff, which
		// wakes this worker before other blocked clients get a
		// timeslice to enqueue theirs. One yield lets those runnable
		// producers catch up so the drain below sees a real batch
		// instead of ping-ponging one query per wakeup; the cost is
		// a single scheduler pass amortized over the whole batch.
		runtime.Gosched()
	}
	for len(batch) < batchCap {
		select {
		case r := <-w.shard:
			batch = append(batch, r)
			continue
		default:
		}
		break
	}
	s.stats.observeBatch(len(batch))

	// Admission-control pass: canceled and already-late queries are
	// answered without touching the tree.
	now := time.Now()
	s.observeQueueDelay(now.Sub(first.enq))
	live := bufs.live[:0]
	for _, r := range batch {
		switch {
		case r.ctx.Err() != nil:
			if s.deliver(r, result{a: Assignment{Cluster: Noise}, err: r.ctx.Err()}) {
				s.stats.canceled.Add(1)
			}
		case !r.deadline.IsZero() && now.After(r.deadline):
			s.deliverErr(r, ErrShedDeadline, &s.stats.shedDeadline)
		default:
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return true
	}
	pending = live

	poison := -1
	if c := s.opts.Chaos; c.Enabled() {
		seq := w.seq.Add(1) - 1
		switch c.batchFault(w.id, seq) {
		case chaosKill:
			panic("chaos: worker killed")
		case chaosStall:
			// Stuck, not slow: no heartbeats until the stall ends. The
			// supervisor deposes this goroutine and a replacement picks
			// up the shard; this batch is still answered (late,
			// correctly) on wake-up — unless the server shuts down
			// first, in which case its requests get ErrClosed.
			select {
			case <-time.After(c.StallFor):
			case <-s.done:
				for _, r := range live {
					s.deliverErr(r, ErrClosed, &s.stats.closedInFlight)
				}
				pending = nil
				return false
			}
		case chaosSlow:
			// Slow, not stuck: keep heartbeating so supervision leaves
			// the worker alone; this is the latency hedging exists for.
			w.beatNow()
			select {
			case <-time.After(c.SlowFor):
			case <-s.done:
			}
			w.beatNow()
		case chaosPanic:
			poison = c.victim(w.id, seq, len(live))
		}
	}

	lm := s.cur.Load()
	s.serveBatch(w, lm, live, bufs, poison)
	pending = nil
	return true
}

// serveBatch answers live against one (model, generation) snapshot.
// The batched fast path computes every answer in one tree traversal;
// if that panics (a poisoned query, a corrupt model), the batch is
// retried one request at a time so only the request whose compute
// panics pays with ErrPanicked — everyone else still gets their
// answer.
func (s *Server) serveBatch(w *workerState, lm *liveModel, live []*request, bufs *workerBufs, poison int) {
	if len(live) > 1 && poison < 0 {
		ok := func() (ok bool) {
			defer func() {
				if recover() != nil {
					ok = false
				}
			}()
			bufs.qbuf = bufs.qbuf[:0]
			for _, r := range live {
				bufs.qbuf = append(bufs.qbuf, r.q...)
			}
			lm.s.AssignBatch(bufs.qbuf, bufs.abuf[:len(live)])
			return true
		}()
		if ok {
			for i, r := range live {
				s.finish(w, r, bufs.abuf[i], lm.gen)
			}
			return
		}
		s.stats.batchPanics.Add(1)
	}
	for i, r := range live {
		s.serveOne(w, lm, r, bufs, i == poison)
	}
}

// serveOne answers a single request with a per-request recover: a
// panic in the compute answers this request with ErrPanicked and
// nothing else.
func (s *Server) serveOne(w *workerState, lm *liveModel, r *request, bufs *workerBufs, poison bool) {
	defer func() {
		if rec := recover(); rec != nil {
			s.deliverErr(r, ErrPanicked, &s.stats.panicked)
		}
	}()
	if poison {
		panic("chaos: poisoned request")
	}
	var a Assignment
	a, bufs.nbrs = lm.s.AssignOne(r.q, bufs.nbrs)
	s.finish(w, r, a, lm.gen)
}

// finish stamps and delivers one computed answer (unless chaos drops
// it), and does the win-side accounting: latency, hedge bookkeeping,
// retry-budget deposits.
func (s *Server) finish(w *workerState, r *request, a Assignment, gen uint64) {
	a.Generation = gen
	a.Hedged = r.hedge
	if c := s.opts.Chaos; c.Enabled() && c.dropsResponse(w.id, w.rseq.Add(1)-1) {
		s.stats.dropped.Add(1)
		return
	}
	if s.deliver(r, result{a: a}) {
		s.stats.completed.Add(1)
		s.stats.lat.observe(time.Since(r.enq))
		if r.hedge {
			s.stats.hedgeWins.Add(1)
		} else {
			s.addHedgeTokens()
		}
		s.maybeUpdateHedgeDelay()
	} else if r.hedge {
		s.stats.hedgeLost.Add(1)
	}
}

// AssignOne answers one query against the snapshot, reusing the
// caller's neighbour buffer (returned grown for the next call). It is
// the single-request arm of the Snapshot contract; hot loops that lack
// a reusable buffer should use Assign instead.
func (m *Model) AssignOne(q []float64, nbrs []int32) (Assignment, []int32) {
	nbrs = m.tree.Radius(q, m.eps, nbrs[:0], nil)
	return m.classify(nbrs), nbrs
}

// Swap atomically replaces the served model with m and returns the new
// generation. In-flight batches finish on the snapshot they loaded;
// every later batch sees m. There is no pause: queries admitted during
// the swap are answered by one model or the other, never neither, and
// each response's Generation says which. Because workers load the
// (model, generation) pair atomically once per batch, generations stay
// monotone per client even while the supervisor is deposing and
// respawning workers mid-swap. The new model must have the same
// dimensionality (queries are validated at admission against the
// then-current model).
func (s *Server) Swap(snap Snapshot) (uint64, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if d := s.cur.Load().s.Dim(); snap.Dim() != d {
		return 0, fmt.Errorf("serve: swap dimensionality %d != current %d", snap.Dim(), d)
	}
	gen := s.gen.Add(1)
	s.cur.Store(&liveModel{s: snap, gen: gen})
	return gen, nil
}

// Model returns the currently served snapshot and its generation.
func (s *Server) Model() (Snapshot, uint64) {
	lm := s.cur.Load()
	return lm.s, lm.gen
}

// Stats snapshots the serving metrics.
func (s *Server) Stats() Stats {
	st := s.stats.snapshot(s.cur.Load().gen)
	st.Health = s.HealthState().String()
	st.QueueDelayEWMA = s.queueDelayEWMA()
	return st
}

// Close stops the server abruptly: workers finish the batch they are
// on, and every query still queued fails with ErrClosed — even one
// that could have been served in microseconds. Use Drain for the
// graceful variant that serves the backlog to a deadline. Close is
// idempotent; Assign calls racing with Close get either a served
// answer or ErrClosed, never a hang.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.shutdown()
}

// Drain retires the server gracefully: admission stops immediately
// (new queries get ErrClosed), but already-admitted queries keep being
// served until the backlog is empty or timeout elapses, whichever is
// first; only then do the workers stop and any stragglers fail with
// ErrClosed. It returns the number of queries that failed — 0 means
// every admitted query was answered. Idempotent with Close: whichever
// runs first wins, the other is a no-op (returning 0).
func (s *Server) Drain(timeout time.Duration) int {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	s.closed = true
	s.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for s.resolved.Load() < s.admitted.Load() && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
	return s.shutdown()
}

// shutdown stops the workers and fails whatever is still queued.
// Callers must have set closed first; exactly one caller reaches here.
func (s *Server) shutdown() int {
	close(s.done)
	s.wg.Wait()
	failed := 0
	for _, ch := range s.shards {
		for {
			select {
			case r := <-ch:
				if s.deliver(r, result{a: Assignment{Cluster: Noise}, err: ErrClosed}) {
					failed++
				}
				continue
			default:
			}
			break
		}
	}
	s.stats.closedInFlight.Add(uint64(failed))
	return failed
}
