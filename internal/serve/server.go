package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned when a query is shed: either the bounded
// admission queue was full at enqueue, or the request's deadline had
// already passed when a worker dequeued it. Shedding early is the
// backpressure mechanism — under sustained overload the server keeps
// answering the queries it can within their deadlines instead of
// letting every response time grow without bound.
var ErrOverloaded = errors.New("serve: overloaded")

// ErrClosed is returned for queries issued to (or stranded in) a
// server that has been closed.
var ErrClosed = errors.New("serve: server closed")

// Options configures a Server. The zero value picks sensible defaults.
type Options struct {
	// Workers is the number of serving goroutines (default: GOMAXPROCS).
	// Each worker owns one shard of the admission queue.
	Workers int
	// BatchCap caps the micro-batch: a worker that wakes up drains at
	// most this many queued queries and answers them in one kd-tree
	// traversal batch. 1 disables batching (every query is a single
	// dispatch); the default is 32. Batching is adaptive — a worker
	// never waits to fill a batch, it takes whatever is queued.
	BatchCap int
	// QueueCap bounds the admission queue across all shards; a query
	// arriving when every shard is full is rejected with ErrOverloaded.
	// Default: Workers * BatchCap * 4.
	QueueCap int
	// MaxQueueDelay is the default per-query deadline measured from
	// enqueue: a query a worker dequeues later than this is shed with
	// ErrOverloaded rather than answered late. An earlier context
	// deadline on the request takes precedence. Default 100ms;
	// negative disables deadline shedding.
	MaxQueueDelay time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.BatchCap <= 0 {
		o.BatchCap = 32
	}
	if o.QueueCap <= 0 {
		o.QueueCap = o.Workers * o.BatchCap * 4
	}
	if o.MaxQueueDelay == 0 {
		o.MaxQueueDelay = 100 * time.Millisecond
	}
	return o
}

// liveModel pairs a snapshot with its generation so one atomic load
// gives workers a consistent (model, generation) view per batch.
type liveModel struct {
	m   *Model
	gen uint64
}

type result struct {
	a   Assignment
	err error
}

type request struct {
	q        []float64
	ctx      context.Context
	enq      time.Time
	deadline time.Time // zero: no deadline
	resp     chan result
}

// Server answers cluster-assignment queries against a hot-swappable
// Model snapshot. Create one with NewServer, query it with Assign from
// any number of goroutines, replace the model with Swap, and stop it
// with Close.
type Server struct {
	opts   Options
	cur    atomic.Pointer[liveModel]
	gen    atomic.Uint64
	swapMu sync.Mutex

	shards []chan *request
	rr     atomic.Uint64 // round-robin admission cursor
	stats  *collector

	mu     sync.RWMutex // guards closed vs. in-flight enqueues
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// NewServer starts a serving pool over m. The caller must Close it.
func NewServer(m *Model, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:   opts,
		shards: make([]chan *request, opts.Workers),
		stats:  newCollector(opts.BatchCap),
		done:   make(chan struct{}),
	}
	s.gen.Store(1)
	s.cur.Store(&liveModel{m: m, gen: 1})
	perShard := (opts.QueueCap + opts.Workers - 1) / opts.Workers
	if perShard < 1 {
		perShard = 1
	}
	for i := range s.shards {
		s.shards[i] = make(chan *request, perShard)
		s.wg.Add(1)
		go s.worker(s.shards[i])
	}
	return s
}

// Assign answers one query, blocking until a worker responds, the
// context is done, or the query is shed. q must have the model's
// dimensionality and must not be mutated until Assign returns.
func (s *Server) Assign(ctx context.Context, q []float64) (Assignment, error) {
	if d := s.cur.Load().m.Dim(); len(q) != d {
		return Assignment{Cluster: Noise}, fmt.Errorf("serve: query has %d coordinates, model wants %d", len(q), d)
	}
	req := &request{
		q:    q,
		ctx:  ctx,
		enq:  time.Now(),
		resp: make(chan result, 1),
	}
	if s.opts.MaxQueueDelay > 0 {
		req.deadline = req.enq.Add(s.opts.MaxQueueDelay)
	}
	if cd, ok := ctx.Deadline(); ok && (req.deadline.IsZero() || cd.Before(req.deadline)) {
		req.deadline = cd
	}

	// Admission: one non-blocking attempt per shard, starting at the
	// round-robin cursor. All shards full means the pool is at least
	// QueueCap queries behind — shed now rather than queue a query
	// that would miss its deadline anyway. The read lock pairs with
	// Close's write lock so no enqueue can race past the final drain.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Assignment{Cluster: Noise}, ErrClosed
	}
	start := int(s.rr.Add(1))
	admitted := false
	for i := 0; i < len(s.shards); i++ {
		select {
		case s.shards[(start+i)%len(s.shards)] <- req:
			admitted = true
		default:
			continue
		}
		break
	}
	s.mu.RUnlock()
	if !admitted {
		s.stats.shedEnq.Add(1)
		return Assignment{Cluster: Noise}, ErrOverloaded
	}

	select {
	case r := <-req.resp:
		return r.a, r.err
	case <-ctx.Done():
		// The worker (or Close's drain) still delivers into the
		// buffered resp channel; nobody blocks on an abandoned request.
		return Assignment{Cluster: Noise}, ctx.Err()
	}
}

// worker drains its shard with adaptive micro-batching: block for the
// first request, then take whatever else is already queued up to
// BatchCap, and answer the whole batch against one atomic model load.
func (s *Server) worker(ch chan *request) {
	defer s.wg.Done()
	batchCap := s.opts.BatchCap
	batch := make([]*request, 0, batchCap)
	live := make([]*request, 0, batchCap)
	qbuf := make([]float64, 0, batchCap*8)
	abuf := make([]Assignment, batchCap)
	var nbrs []int32
	for {
		var first *request
		select {
		case first = <-ch:
		case <-s.done:
			return
		}
		batch = append(batch[:0], first)
		if batchCap > 1 && len(ch) == 0 {
			// The first dequeue usually arrives by direct handoff, which
			// wakes this worker before other blocked clients get a
			// timeslice to enqueue theirs. One yield lets those runnable
			// producers catch up so the drain below sees a real batch
			// instead of ping-ponging one query per wakeup; the cost is
			// a single scheduler pass amortized over the whole batch.
			runtime.Gosched()
		}
		for len(batch) < batchCap {
			select {
			case r := <-ch:
				batch = append(batch, r)
				continue
			default:
			}
			break
		}
		s.stats.observeBatch(len(batch))

		// Admission-control pass: canceled and already-late queries are
		// answered without touching the tree.
		now := time.Now()
		live = live[:0]
		for _, r := range batch {
			switch {
			case r.ctx.Err() != nil:
				s.stats.canceled.Add(1)
				r.resp <- result{a: Assignment{Cluster: Noise}, err: r.ctx.Err()}
			case !r.deadline.IsZero() && now.After(r.deadline):
				s.stats.shedDeadline.Add(1)
				r.resp <- result{a: Assignment{Cluster: Noise}, err: ErrOverloaded}
			default:
				live = append(live, r)
			}
		}
		if len(live) == 0 {
			continue
		}

		lm := s.cur.Load()
		if len(live) == 1 {
			// Single dispatch: one plain Radius with a worker-local
			// neighbour buffer. This is the whole serving path when
			// BatchCap == 1 (the "unbatched" benchmark arm).
			var a Assignment
			a, nbrs = lm.m.assignReuse(live[0].q, nbrs)
			a.Generation = lm.gen
			s.finish(live[0], a)
			continue
		}
		qbuf = qbuf[:0]
		for _, r := range live {
			qbuf = append(qbuf, r.q...)
		}
		out := abuf[:len(live)]
		lm.m.AssignBatch(qbuf, out)
		for i, r := range live {
			out[i].Generation = lm.gen
			s.finish(r, out[i])
		}
	}
}

// finish records a completed query and delivers its answer.
func (s *Server) finish(r *request, a Assignment) {
	s.stats.completed.Add(1)
	s.stats.lat.observe(time.Since(r.enq))
	r.resp <- result{a: a}
}

// assignReuse answers one query against the snapshot, reusing the
// caller's neighbour buffer (returned grown for the next call).
func (m *Model) assignReuse(q []float64, nbrs []int32) (Assignment, []int32) {
	nbrs = m.tree.Radius(q, m.eps, nbrs[:0], nil)
	return m.classify(nbrs), nbrs
}

// Swap atomically replaces the served model with m and returns the new
// generation. In-flight batches finish on the snapshot they loaded;
// every later batch sees m. There is no pause: queries admitted during
// the swap are answered by one model or the other, never neither, and
// each response's Generation says which. The new model must have the
// same dimensionality (queries are validated at admission against the
// then-current model).
func (s *Server) Swap(m *Model) (uint64, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if d := s.cur.Load().m.Dim(); m.Dim() != d {
		return 0, fmt.Errorf("serve: swap dimensionality %d != current %d", m.Dim(), d)
	}
	gen := s.gen.Add(1)
	s.cur.Store(&liveModel{m: m, gen: gen})
	return gen, nil
}

// Model returns the currently served snapshot and its generation.
func (s *Server) Model() (*Model, uint64) {
	lm := s.cur.Load()
	return lm.m, lm.gen
}

// Stats snapshots the serving metrics.
func (s *Server) Stats() Stats {
	return s.stats.snapshot(s.cur.Load().gen)
}

// Close stops the workers and fails any still-queued query with
// ErrClosed. It is idempotent; Assign calls racing with Close get
// either a served answer or ErrClosed, never a hang.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	for _, ch := range s.shards {
		for {
			select {
			case r := <-ch:
				r.resp <- result{a: Assignment{Cluster: Noise}, err: ErrClosed}
				continue
			default:
			}
			break
		}
	}
}
