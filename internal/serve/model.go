// Package serve is the online model-serving subsystem: it freezes a
// finished clustering into an immutable snapshot and answers "which
// cluster would this point join?" queries on real goroutines and the
// wall clock — unlike everything under internal/core, internal/spark
// and internal/vcluster, which runs offline on the simulated clock.
//
// The design mirrors the paper's share-nothing replication. The paper
// broadcasts the whole dataset plus its kd-tree to every executor so
// eps-queries never cross the network; a serving replica is exactly
// that broadcast made long-lived. Freeze produces the in-memory
// analogue of the broadcast variable: dataset, packed kd-tree, final
// labels, core-point bitset and the eps/minPts parameters, all
// immutable and therefore safe for unlimited concurrent readers.
//
// On top of the snapshot, Server runs a sharded worker pool with
// adaptive micro-batching (queued queries are coalesced into one
// kd-tree traversal batch per wakeup, amortizing setup and cache
// warmth — the same lever the GPU tree-traversal literature pulls), a
// bounded admission queue with deadline-based load shedding, per-
// request context cancellation, and zero-downtime model hot-swap via
// an atomic pointer with a generation counter surfaced in responses.
//
// The offline clustering path never imports this package; the
// dependency points one way (serve → dbscan/kdtree/geom), so serving
// can never perturb offline results.
package serve

import (
	"fmt"

	"sparkdbscan/internal/dbscan"
	"sparkdbscan/internal/geom"
	"sparkdbscan/internal/kdtree"
)

// Noise is returned by Assign for points that would join no cluster.
const Noise = dbscan.Noise

// Model is an immutable serving snapshot of one finished clustering:
// the dataset, its packed kd-tree, per-point labels, the core-point
// bitset, and the DBSCAN parameters the labels were produced with.
// All fields are private and never written after Freeze, so any number
// of goroutines may query a Model concurrently with no locking.
type Model struct {
	ds     *geom.Dataset
	tree   *kdtree.Tree
	labels []int32
	core   []uint64 // bitset, bit i = point i is a core point
	eps    float64
	minPts int

	numClusters int
	numCore     int
}

// Freeze snapshots a clustering into a servable Model. labels must
// hold one entry per dataset point (cluster id or dbscan.Noise).
//
// core marks the core points; pass nil to have Freeze derive the
// bitset from the tree (one RadiusCount per point — the core property
// is |eps-neighbourhood| >= minPts, independent of labels), which is
// what distributed runs do since the driver-side merge only keeps
// labels. tree may be nil, in which case Freeze builds one.
//
// The labels (and core flags, when given) are copied; the dataset and
// tree are shared with the caller and must not be mutated afterwards —
// the same contract kdtree.Build already imposes.
func Freeze(ds *geom.Dataset, labels []int32, core []bool, tree *kdtree.Tree, p dbscan.Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := ds.Len()
	if len(labels) != n {
		return nil, fmt.Errorf("serve: %d labels for %d points", len(labels), n)
	}
	if core != nil && len(core) != n {
		return nil, fmt.Errorf("serve: %d core flags for %d points", len(core), n)
	}
	if tree == nil {
		tree = kdtree.Build(ds)
	} else if tree.Size() != n {
		return nil, fmt.Errorf("serve: tree over %d points, dataset has %d", tree.Size(), n)
	}
	m := &Model{
		ds:     ds,
		tree:   tree,
		labels: append([]int32(nil), labels...),
		core:   make([]uint64, (n+63)/64),
		eps:    p.Eps,
		minPts: p.MinPts,
	}
	for _, l := range labels {
		if int(l) >= m.numClusters {
			m.numClusters = int(l) + 1
		}
	}
	if core != nil {
		for i, c := range core {
			if c {
				m.core[i/64] |= 1 << (i % 64)
				m.numCore++
			}
		}
	} else {
		for i := 0; i < n; i++ {
			if tree.RadiusCount(ds.At(int32(i)), p.Eps, nil) >= p.MinPts {
				m.core[i/64] |= 1 << (i % 64)
				m.numCore++
			}
		}
	}
	return m, nil
}

// isCore reports whether point i is a core point.
func (m *Model) isCore(i int32) bool {
	return m.core[i/64]&(1<<(uint(i)%64)) != 0
}

// NumPoints returns the snapshot's dataset size.
func (m *Model) NumPoints() int { return m.ds.Len() }

// NumClusters returns the number of clusters in the snapshot.
func (m *Model) NumClusters() int { return m.numClusters }

// NumCore returns the number of core points in the snapshot.
func (m *Model) NumCore() int { return m.numCore }

// Params returns the DBSCAN parameters the snapshot was frozen with.
func (m *Model) Params() dbscan.Params {
	return dbscan.Params{Eps: m.eps, MinPts: m.minPts}
}

// Assignment is one query's answer.
type Assignment struct {
	// Cluster is the id the queried point would join, or Noise.
	// DBSCAN assigns a new point to a cluster exactly when it lies
	// within eps of one of the cluster's core points; ties between
	// clusters (a border point in reach of core points from several)
	// break deterministically to the lowest cluster id.
	Cluster int32
	// Core reports whether the point would itself be a core point if
	// inserted: |eps-neighbourhood ∪ {itself}| >= minPts. A Core
	// response with Cluster == Noise means the point would found a new
	// cluster — density the frozen model has no id for.
	Core bool
	// Generation identifies the model snapshot that served the answer;
	// it increases by one per hot-swap. Zero means the Model was
	// queried directly rather than through a Server.
	Generation uint64
	// Hedged reports that the answer came from a hedged re-dispatch
	// rather than the primary one (always false without hedging).
	Hedged bool
	// Epoch identifies the mutable-model epoch that served the answer.
	// Frozen Models always report 0; live models (internal/live) stamp
	// the epoch of the view the answer was computed against, which
	// advances with every published mutation — finer-grained than
	// Generation, which only moves on hot-swap.
	Epoch uint64
}

// Snapshot is what a Server serves: any consistent, concurrently
// readable view that can answer assignment queries. The frozen *Model
// is the canonical implementation; live.Model's epoch views implement
// it too, which is how the write path slots under the unchanged
// serving machinery. Implementations must be safe for unlimited
// concurrent callers and must answer every query against one coherent
// state (frozen data, or one pinned epoch per call).
type Snapshot interface {
	// Dim returns the dimensionality queries must have.
	Dim() int
	// AssignBatch answers one query per point of qs (flat row-major,
	// len(out) points), writing the Assignment for query i to out[i].
	AssignBatch(qs []float64, out []Assignment)
	// AssignOne answers a single query, reusing the caller's neighbour
	// buffer (returned grown for the next call).
	AssignOne(q []float64, nbrs []int32) (Assignment, []int32)
}

var _ Snapshot = (*Model)(nil)

// classify turns one query's eps-neighbourhood into an Assignment.
// Taking the minimum labelled core neighbour makes the answer a pure
// function of the neighbour *set*, so it is deterministic even though
// tree traversal order is unspecified.
func (m *Model) classify(nbrs []int32) Assignment {
	a := Assignment{Cluster: Noise, Core: len(nbrs)+1 >= m.minPts}
	for _, nb := range nbrs {
		if !m.isCore(nb) {
			continue
		}
		if l := m.labels[nb]; l >= 0 && (a.Cluster == Noise || l < a.Cluster) {
			a.Cluster = l
		}
	}
	return a
}

// Assign answers one query against the snapshot. It is safe to call
// from any number of goroutines; each call allocates a neighbour
// buffer, so hot paths should prefer AssignBatch or a Server.
func (m *Model) Assign(q []float64) Assignment {
	return m.classify(m.tree.Radius(q, m.eps, nil, nil))
}

// AssignBatch answers one query per point of qs (flat row-major,
// len(out) points) in a single kd-tree traversal batch, writing the
// Assignment for query i to out[i]. Buffers are shared across the
// batch via kdtree.RadiusBatch; results equal per-query Assign calls.
func (m *Model) AssignBatch(qs []float64, out []Assignment) {
	if len(out) == 0 {
		return
	}
	m.tree.RadiusBatch(qs[:len(out)*m.ds.Dim], m.ds.Dim, m.eps, nil, func(qi int, nbrs []int32) {
		out[qi] = m.classify(nbrs)
	})
}

// Dim returns the dimensionality queries must have.
func (m *Model) Dim() int { return m.ds.Dim }
