package serve

import (
	"context"
	"sync"
	"testing"

	"sparkdbscan/internal/dbscan"
	"sparkdbscan/internal/geom"
	"sparkdbscan/internal/kdtree"
	"sparkdbscan/internal/rng"
)

// line2d builds a 2-d dataset from x coordinates on the y=0 axis —
// the border-semantics tests need exact control over distances.
func line2d(xs ...float64) *geom.Dataset {
	ds := geom.NewDataset(len(xs), 2)
	for i, x := range xs {
		ds.Set(int32(i), []float64{x, 0})
	}
	return ds
}

func clusteredDS(seed uint64, n, dim, clusters int, std float64) *geom.Dataset {
	r := rng.New(seed)
	ds := geom.NewDataset(n, dim)
	centers := make([][]float64, clusters)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = r.Float64() * 1000
		}
	}
	for i := 0; i < n; i++ {
		c := centers[i%clusters]
		for j := 0; j < dim; j++ {
			ds.Coords[i*dim+j] = c[j] + r.NormFloat64()*std
		}
	}
	return ds
}

func mustFreeze(t *testing.T, ds *geom.Dataset, p dbscan.Params) (*Model, *dbscan.Result) {
	t.Helper()
	tree := kdtree.Build(ds)
	res, err := dbscan.Run(ds, tree, p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Freeze(ds, res.Labels, res.Core, tree, p)
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func TestFreezeValidation(t *testing.T) {
	ds := line2d(0, 1, 2)
	if _, err := Freeze(ds, []int32{0, 0}, nil, nil, dbscan.Params{Eps: 1, MinPts: 1}); err == nil {
		t.Fatal("label-count mismatch accepted")
	}
	if _, err := Freeze(ds, []int32{0, 0, 0}, []bool{true}, nil, dbscan.Params{Eps: 1, MinPts: 1}); err == nil {
		t.Fatal("core-count mismatch accepted")
	}
	if _, err := Freeze(ds, []int32{0, 0, 0}, nil, nil, dbscan.Params{Eps: 0, MinPts: 1}); err == nil {
		t.Fatal("bad params accepted")
	}
	if _, err := Freeze(ds, []int32{0, 0, 0}, nil, kdtree.Build(line2d(0, 1)), dbscan.Params{Eps: 1, MinPts: 1}); err == nil {
		t.Fatal("tree-size mismatch accepted")
	}
}

// TestFreezeDerivesCoreBitset pins that a Freeze without core flags
// (the distributed path — the driver merge keeps only labels)
// recomputes exactly the bitset sequential DBSCAN produced.
func TestFreezeDerivesCoreBitset(t *testing.T) {
	ds := clusteredDS(3, 1200, 2, 3, 5)
	p := dbscan.Params{Eps: 8, MinPts: 5}
	tree := kdtree.Build(ds)
	res, err := dbscan.Run(ds, tree, p)
	if err != nil {
		t.Fatal(err)
	}
	withCore, err := Freeze(ds, res.Labels, res.Core, tree, p)
	if err != nil {
		t.Fatal(err)
	}
	derived, err := Freeze(ds, res.Labels, nil, tree, p)
	if err != nil {
		t.Fatal(err)
	}
	if withCore.NumCore() != derived.NumCore() {
		t.Fatalf("derived %d core points, sequential DBSCAN marked %d", derived.NumCore(), withCore.NumCore())
	}
	for i := range res.Labels {
		if withCore.isCore(int32(i)) != derived.isCore(int32(i)) {
			t.Fatalf("core bit %d differs between given and derived bitsets", i)
		}
	}
}

// TestAssignBorderSemantics is the table test for the decision
// structure Assign freezes: a point joins the cluster of a core point
// within eps, ties across clusters break to the lowest cluster id, a
// point reachable only through a border point stays noise, and dense
// empty space reports Core with no cluster. The tie case is then
// hammered by 100 concurrent calls, which must all agree.
func TestAssignBorderSemantics(t *testing.T) {
	// Index order ⇒ cluster ids: A = {0, .05, .1, .15} becomes cluster
	// 0, B = {.95, 1.0, 1.05, 1.1} cluster 1. With eps=.52, minPts=4
	// all eight are core; the ninth point (x=1.6) only reaches core
	// 1.1 (dist .50) and so is a border point of cluster 1.
	ds := line2d(0, 0.05, 0.1, 0.15, 0.95, 1.0, 1.05, 1.1, 1.6)
	p := dbscan.Params{Eps: 0.52, MinPts: 4}
	m, res := mustFreeze(t, ds, p)
	if res.NumClusters != 2 {
		t.Fatalf("setup: want 2 clusters, got %d", res.NumClusters)
	}
	// Point 8 (x=1.6) is a border point of cluster 1: within eps of
	// core 1.1, but its own neighbourhood {1.1, 1.15?…} is too small.
	if res.Core[8] || res.Labels[8] != 1 {
		t.Fatalf("setup: point 8 core=%v label=%d, want border of cluster 1", res.Core[8], res.Labels[8])
	}

	cases := []struct {
		name string
		q    []float64
		want Assignment
	}{
		// Equidistant (0.40) from cores 0.15 (cluster 0) and 0.95
		// (cluster 1): deterministic tie-break to the lower id. Its
		// own neighbourhood holds 6 points, so it would be core.
		{"tie breaks to lowest id", []float64{0.55, 0}, Assignment{Cluster: 0, Core: true}},
		{"interior of A", []float64{0.05, 0}, Assignment{Cluster: 0, Core: true}},
		{"interior of B", []float64{1.02, 0}, Assignment{Cluster: 1, Core: true}},
		// 2.0 is within eps of border point 1.6 only (dist .40; the
		// nearest core 1.1 is .90 away): density-reachability does not
		// extend through border points, so this is noise.
		{"reachable only via border", []float64{2.0, 0}, Assignment{Cluster: Noise, Core: false}},
		{"far away", []float64{50, 50}, Assignment{Cluster: Noise, Core: false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := m.Assign(tc.q); got != tc.want {
				t.Fatalf("Assign(%v) = %+v, want %+v", tc.q, got, tc.want)
			}
		})
	}

	// The tie case must stay deterministic under concurrency: 100
	// repeated concurrent calls, through both the direct and the
	// batched entry, all agree with the sequential answer.
	srv := NewServer(m, Options{Workers: 8, BatchCap: 8})
	defer srv.Close()
	tie := []float64{0.55, 0}
	want := m.Assign(tie)
	var wg sync.WaitGroup
	got := make([]Assignment, 100)
	errs := make([]error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				got[i] = m.Assign(tie)
			} else {
				got[i], errs[i] = srv.Assign(context.Background(), tie)
			}
		}(i)
	}
	wg.Wait()
	for i := range got {
		if errs[i] != nil {
			t.Fatalf("call %d: %v", i, errs[i])
		}
		got[i].Generation = 0
		if got[i] != want {
			t.Fatalf("call %d: %+v, want %+v", i, got[i], want)
		}
	}
}

// TestAssignBatchMatchesAssign pins the batched entry to the scalar
// one across a realistic workload.
func TestAssignBatchMatchesAssign(t *testing.T) {
	ds := clusteredDS(9, 2000, 10, 2, 8)
	m, _ := mustFreeze(t, ds, dbscan.Params{Eps: 25, MinPts: 5})
	nq := 200
	qs := make([]float64, 0, nq*ds.Dim)
	for i := 0; i < nq; i++ {
		qs = append(qs, ds.At(int32(i*7%ds.Len()))...)
	}
	out := make([]Assignment, nq)
	m.AssignBatch(qs, out)
	for i := 0; i < nq; i++ {
		if want := m.Assign(qs[i*ds.Dim : (i+1)*ds.Dim]); out[i] != want {
			t.Fatalf("query %d: batch %+v, scalar %+v", i, out[i], want)
		}
	}
}

// TestAssignMatchesOfflineLabels feeds every dataset point back to
// Assign: core points must get their own cluster back, and border
// points must land in some cluster whose core reaches them (which may
// legitimately differ from the offline tie-break).
func TestAssignMatchesOfflineLabels(t *testing.T) {
	ds := clusteredDS(17, 1500, 2, 4, 6)
	m, res := mustFreeze(t, ds, dbscan.Params{Eps: 8, MinPts: 5})
	for i := 0; i < ds.Len(); i++ {
		a := m.Assign(ds.At(int32(i)))
		if res.Core[i] {
			if a.Cluster != res.Labels[i] {
				t.Fatalf("core point %d: Assign says %d, offline label %d", i, a.Cluster, res.Labels[i])
			}
			if !a.Core {
				t.Fatalf("core point %d not reported Core", i)
			}
		} else if res.Labels[i] != dbscan.Noise && a.Cluster == Noise {
			t.Fatalf("border point %d of cluster %d assigned to noise", i, res.Labels[i])
		}
	}
}
