package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The latency histogram is log-linear: one octave per power of two of
// nanoseconds, histSub linear sub-buckets per octave, giving ~6%
// relative resolution across the full range with 8 KiB of counters and
// one atomic add per sample — no locks on the serving hot path.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits
	histBuckets = 64 * histSub
)

// latencyHist is a fixed-size concurrent histogram of durations.
type latencyHist struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds
}

func histBucket(ns uint64) int {
	b := bits.Len64(ns) // 0..64
	if b <= histSubBits {
		return int(ns)
	}
	return (b-histSubBits)*histSub + int(ns>>(b-1-histSubBits)) - histSub
}

// histValue returns the lower edge of bucket i, inverting histBucket.
func histValue(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	oct := i/histSub + histSubBits - 1
	minor := uint64(i%histSub) + histSub
	return minor << (oct - histSubBits)
}

func (h *latencyHist) observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	h.buckets[histBucket(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			return
		}
	}
}

// quantiles returns the latencies at the given cumulative fractions
// (each in (0,1]) in one pass over the buckets. Values are bucket
// lower edges, i.e. at most ~6% below the true quantile.
func (h *latencyHist) quantiles(qs ...float64) []time.Duration {
	total := h.count.Load()
	out := make([]time.Duration, len(qs))
	if total == 0 {
		return out
	}
	ranks := make([]uint64, len(qs))
	for i, q := range qs {
		r := uint64(q * float64(total))
		if r < 1 {
			r = 1
		}
		ranks[i] = r
	}
	var cum uint64
	qi := 0
	for b := 0; b < histBuckets && qi < len(qs); b++ {
		cum += h.buckets[b].Load()
		for qi < len(qs) && cum >= ranks[qi] {
			out[qi] = time.Duration(histValue(b))
			qi++
		}
	}
	return out
}

// Stats is a point-in-time snapshot of a Server's serving metrics,
// cumulative since the server started.
type Stats struct {
	// Completed counts queries answered with an Assignment.
	Completed uint64 `json:"completed"`
	// Shed counts queries rejected with ErrOverloaded, split by where
	// the rejection happened: a full admission queue at enqueue, a
	// missed deadline discovered at dequeue, or a priority shed while
	// the server was degraded or browned out.
	Shed         uint64 `json:"shed"`
	ShedAtEnq    uint64 `json:"shed_at_enqueue"`
	ShedDeadline uint64 `json:"shed_deadline"`
	ShedPriority uint64 `json:"shed_priority"`
	// Canceled counts queries whose context was done by dequeue time.
	Canceled uint64 `json:"canceled"`
	// Panicked counts queries answered with ErrPanicked (the compute
	// panicked and the worker recovered); BatchPanics counts batched
	// traversals that panicked and were retried one request at a time.
	Panicked    uint64 `json:"panicked"`
	BatchPanics uint64 `json:"batch_panics"`
	// Supervision: worker goroutines that died (panic escaped the
	// per-request recover), stalled workers the supervisor deposed,
	// and replacements it spawned for either cause.
	WorkerDeaths uint64 `json:"worker_deaths"`
	WorkerStalls uint64 `json:"worker_stalls"`
	Respawns     uint64 `json:"respawns"`
	// Dropped counts responses discarded by chaos injection.
	Dropped uint64 `json:"dropped"`
	// Hedging: re-dispatches issued, re-dispatches whose answer won,
	// re-dispatches whose answer lost to the primary, and hedge
	// attempts denied by the retry budget or a full queue.
	Hedges      uint64 `json:"hedges"`
	HedgeWins   uint64 `json:"hedge_wins"`
	HedgeLost   uint64 `json:"hedge_lost"`
	HedgeDenied uint64 `json:"hedge_denied"`
	// ClosedInFlight counts queries failed with ErrClosed at shutdown.
	ClosedInFlight uint64 `json:"closed_in_flight"`
	// Health is the degradation state ("healthy", "degraded",
	// "browned-out"); QueueDelayEWMA is the smoothed dequeue-side
	// queue delay driving it; HealthTransitions counts state changes.
	Health            string        `json:"health"`
	QueueDelayEWMA    time.Duration `json:"queue_delay_ewma_ns"`
	HealthTransitions uint64        `json:"health_transitions"`
	// Batches counts worker wakeups; Completed/Batches is the mean
	// micro-batch size, and BatchSizeDist[k] counts batches that
	// drained exactly k requests (index 0 is unused).
	Batches       uint64   `json:"batches"`
	MeanBatch     float64  `json:"mean_batch"`
	BatchSizeDist []uint64 `json:"batch_size_dist"`
	// Wall-clock enqueue-to-response latency of completed queries.
	LatencyP50  time.Duration `json:"latency_p50_ns"`
	LatencyP99  time.Duration `json:"latency_p99_ns"`
	LatencyP999 time.Duration `json:"latency_p999_ns"`
	LatencyMax  time.Duration `json:"latency_max_ns"`
	LatencyMean time.Duration `json:"latency_mean_ns"`
	// Uptime is the time since the server started; QPS is
	// Completed/Uptime.
	Uptime time.Duration `json:"uptime_ns"`
	QPS    float64       `json:"qps"`
	// Generation is the currently served model generation.
	Generation uint64 `json:"generation"`
}

// collector is the concurrent backing store behind Stats.
type collector struct {
	start             time.Time
	completed         atomic.Uint64
	shedEnq           atomic.Uint64
	shedDeadline      atomic.Uint64
	shedPriority      atomic.Uint64
	canceled          atomic.Uint64
	panicked          atomic.Uint64
	batchPanics       atomic.Uint64
	workerDeaths      atomic.Uint64
	stalls            atomic.Uint64
	respawns          atomic.Uint64
	dropped           atomic.Uint64
	hedges            atomic.Uint64
	hedgeWins         atomic.Uint64
	hedgeLost         atomic.Uint64
	hedgeDenied       atomic.Uint64
	closedInFlight    atomic.Uint64
	healthTransitions atomic.Uint64
	batches           atomic.Uint64
	batchDist         []atomic.Uint64 // index = drained batch size
	lat               latencyHist
}

func newCollector(batchCap int) *collector {
	return &collector{
		start:     time.Now(),
		batchDist: make([]atomic.Uint64, batchCap+1),
	}
}

func (c *collector) observeBatch(size int) {
	c.batches.Add(1)
	if size >= len(c.batchDist) {
		size = len(c.batchDist) - 1
	}
	c.batchDist[size].Add(1)
}

func (c *collector) snapshot(generation uint64) Stats {
	s := Stats{
		Completed:         c.completed.Load(),
		ShedAtEnq:         c.shedEnq.Load(),
		ShedDeadline:      c.shedDeadline.Load(),
		ShedPriority:      c.shedPriority.Load(),
		Canceled:          c.canceled.Load(),
		Panicked:          c.panicked.Load(),
		BatchPanics:       c.batchPanics.Load(),
		WorkerDeaths:      c.workerDeaths.Load(),
		WorkerStalls:      c.stalls.Load(),
		Respawns:          c.respawns.Load(),
		Dropped:           c.dropped.Load(),
		Hedges:            c.hedges.Load(),
		HedgeWins:         c.hedgeWins.Load(),
		HedgeLost:         c.hedgeLost.Load(),
		HedgeDenied:       c.hedgeDenied.Load(),
		ClosedInFlight:    c.closedInFlight.Load(),
		HealthTransitions: c.healthTransitions.Load(),
		Batches:           c.batches.Load(),
		Uptime:            time.Since(c.start),
		Generation:        generation,
	}
	s.Shed = s.ShedAtEnq + s.ShedDeadline + s.ShedPriority
	if s.Batches > 0 {
		s.MeanBatch = float64(s.Completed+s.Canceled+s.ShedDeadline+s.Panicked+s.Dropped+s.HedgeLost) / float64(s.Batches)
	}
	s.BatchSizeDist = make([]uint64, len(c.batchDist))
	for i := range c.batchDist {
		s.BatchSizeDist[i] = c.batchDist[i].Load()
	}
	q := c.lat.quantiles(0.50, 0.99, 0.999)
	s.LatencyP50, s.LatencyP99, s.LatencyP999 = q[0], q[1], q[2]
	s.LatencyMax = time.Duration(c.lat.max.Load())
	if n := c.lat.count.Load(); n > 0 {
		s.LatencyMean = time.Duration(c.lat.sum.Load() / n)
	}
	if sec := s.Uptime.Seconds(); sec > 0 {
		s.QPS = float64(s.Completed) / sec
	}
	return s
}
