package serve

import (
	"math"
	"sync/atomic"
	"time"
)

// Health is the server's degradation state, driven by the queue-delay
// EWMA the supervisor maintains. The ladder trades work away in order
// of how much callers value it: Degraded tightens the queue-delay
// budget and sheds PriorityLow at admission; BrownedOut tightens it
// further and serves only PriorityHigh. Indiscriminate shedding (full
// queue, missed deadline) still applies in every state — the ladder
// decides who is shed first, not whether shedding exists.
type Health int32

const (
	HealthHealthy Health = iota
	HealthDegraded
	HealthBrownedOut
)

func (h Health) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthBrownedOut:
		return "browned-out"
	}
	return "unknown"
}

// Priority orders queries for brownout shedding. The zero value is
// PriorityNormal, so plain Assign calls are Normal.
type Priority int8

const (
	PriorityLow    Priority = -1
	PriorityNormal Priority = 0
	PriorityHigh   Priority = 1
)

// workerState is the supervisor's view of one shard's worker: the
// shard channel, a heartbeat, a busy count, an epoch that deposes
// stale goroutines, and the chaos sequence counters (which survive
// respawns, so a replacement continues its predecessor's schedule).
type workerState struct {
	id    int
	shard chan *request
	epoch atomic.Uint64 // bumped to depose the current goroutine
	beat  atomic.Int64  // unixnano of the last heartbeat
	busy  atomic.Int64  // goroutines of this shard currently inside a batch
	dead  atomic.Bool   // set by a worker's last-gasp recover
	seq   atomic.Uint64 // batch sequence (chaos batch-fault key)
	rseq  atomic.Uint64 // response sequence (chaos drop key)
}

func (w *workerState) beatNow() { w.beat.Store(time.Now().UnixNano()) }

// supervise is the supervisor goroutine: every SupervisorInterval it
// respawns dead workers, deposes-and-replaces stalled ones (busy with
// a heartbeat older than StallTimeout), decays the queue-delay EWMA
// toward zero so an idle server recovers its health, and walks the
// health state machine. It exits when the server shuts down.
func (s *Server) supervise() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.SupervisorInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
		}
		if s.opts.StallTimeout >= 0 {
			now := time.Now().UnixNano()
			for _, w := range s.workers {
				if w.dead.CompareAndSwap(true, false) {
					s.stats.respawns.Add(1)
					s.respawn(w)
					continue
				}
				if w.busy.Load() > 0 && now-w.beat.Load() > int64(s.opts.StallTimeout) {
					s.stats.stalls.Add(1)
					s.stats.respawns.Add(1)
					// Deposing resets the heartbeat so the next tick
					// doesn't double-replace before the new goroutine's
					// first beat; the stalled goroutine answers its
					// in-flight batch when it wakes, sees its epoch
					// superseded, and exits.
					w.beat.Store(now)
					s.respawn(w)
				}
			}
		}
		s.decayQueueDelay()
		s.updateHealth()
	}
}

// respawn starts a fresh goroutine for w under a new epoch. The read
// lock pairs with shutdown's write lock: a respawn either observes
// closed (and does nothing) or completes its wg.Add before shutdown
// reaches wg.Wait, so the waitgroup never races.
func (s *Server) respawn(w *workerState) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return
	}
	epoch := w.epoch.Add(1)
	w.beatNow()
	s.wg.Add(1)
	go s.runWorker(w, epoch)
}

// observeQueueDelay folds one dequeue-side queue delay into the EWMA
// (alpha 0.2, lock-free CAS on the float bits).
func (s *Server) observeQueueDelay(d time.Duration) {
	const alpha = 0.2
	for {
		old := s.qdelay.Load()
		next := math.Float64bits((1-alpha)*math.Float64frombits(old) + alpha*float64(d))
		if s.qdelay.CompareAndSwap(old, next) {
			return
		}
	}
}

// decayQueueDelay pulls the EWMA toward zero each supervisor tick, so
// health recovers even when no traffic arrives to update it.
func (s *Server) decayQueueDelay() {
	for {
		old := s.qdelay.Load()
		v := math.Float64frombits(old)
		if v < float64(time.Microsecond) {
			return
		}
		if s.qdelay.CompareAndSwap(old, math.Float64bits(v*0.9)) {
			return
		}
	}
}

func (s *Server) queueDelayEWMA() time.Duration {
	return time.Duration(math.Float64frombits(s.qdelay.Load()))
}

// updateHealth walks the Healthy → Degraded → BrownedOut ladder from
// the queue-delay EWMA. Upward transitions trigger at DegradeAt and
// BrownoutAt (fractions of MaxQueueDelay); downward ones at half the
// entry threshold, the hysteresis that keeps the state from
// oscillating at a boundary. With deadline shedding disabled
// (MaxQueueDelay <= 0) there is no budget to protect and the server
// stays Healthy.
func (s *Server) updateHealth() {
	if s.opts.MaxQueueDelay <= 0 {
		return
	}
	ew := s.queueDelayEWMA()
	degrade := time.Duration(s.opts.DegradeAt * float64(s.opts.MaxQueueDelay))
	brownout := time.Duration(s.opts.BrownoutAt * float64(s.opts.MaxQueueDelay))
	cur := Health(s.health.Load())
	next := cur
	switch cur {
	case HealthHealthy:
		switch {
		case ew >= brownout:
			next = HealthBrownedOut
		case ew >= degrade:
			next = HealthDegraded
		}
	case HealthDegraded:
		switch {
		case ew >= brownout:
			next = HealthBrownedOut
		case ew < degrade/2:
			next = HealthHealthy
		}
	case HealthBrownedOut:
		switch {
		case ew < degrade/2:
			next = HealthHealthy
		case ew < brownout/2:
			next = HealthDegraded
		}
	}
	if next != cur {
		s.health.Store(int32(next))
		s.stats.healthTransitions.Add(1)
	}
}

// HealthState returns the server's current degradation state.
func (s *Server) HealthState() Health { return Health(s.health.Load()) }

// ---- hedging: adaptive delay + retry budget ----

// hedgeDelay is how long Assign waits before re-dispatching a request
// to another shard: the fixed Options.HedgeDelay when set, otherwise
// the adaptive estimate maintained from the completed-latency
// histogram (half the tracked p99 — a hedge launched *at* the p99
// cannot beat the tail it is racing — clamped to [250µs, 10ms]).
func (s *Server) hedgeDelay() time.Duration {
	if s.opts.HedgeDelay > 0 {
		return s.opts.HedgeDelay
	}
	return time.Duration(s.hedgeNs.Load())
}

const (
	hedgeDelayInit = time.Millisecond
	hedgeDelayMin  = 250 * time.Microsecond
	hedgeDelayMax  = 10 * time.Millisecond
)

// maybeUpdateHedgeDelay refreshes the adaptive hedge delay every 256
// completions (a p99 scan over the histogram is cheap but not free).
func (s *Server) maybeUpdateHedgeDelay() {
	if !s.opts.Hedge || s.opts.HedgeDelay > 0 {
		return
	}
	if s.stats.lat.count.Load()%256 != 0 {
		return
	}
	p99 := s.stats.lat.quantiles(0.99)[0]
	d := p99 / 2
	if d < hedgeDelayMin {
		d = hedgeDelayMin
	}
	if d > hedgeDelayMax {
		d = hedgeDelayMax
	}
	s.hedgeNs.Store(int64(d))
}

// The retry budget is a token bucket in milli-tokens: every completed
// primary deposits HedgeBudget tokens (capped at HedgeBurst), every
// hedge dispatch withdraws one. Hedging therefore can never amplify
// an overload: dispatches are bounded by
// primaries·HedgeBudget + HedgeBurst no matter how slow the server
// gets — when everything is slow the bucket drains and hedging stops.
const milliToken = 1000

func (s *Server) addHedgeTokens() {
	if !s.opts.Hedge {
		return
	}
	add := int64(s.opts.HedgeBudget * milliToken)
	cap := int64(s.opts.HedgeBurst) * milliToken
	for {
		old := s.hedgeTokens.Load()
		next := old + add
		if next > cap {
			next = cap
		}
		if next == old || s.hedgeTokens.CompareAndSwap(old, next) {
			return
		}
	}
}

func (s *Server) takeHedgeToken() bool {
	for {
		old := s.hedgeTokens.Load()
		if old < milliToken {
			return false
		}
		if s.hedgeTokens.CompareAndSwap(old, old-milliToken) {
			return true
		}
	}
}
