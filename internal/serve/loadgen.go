package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"sparkdbscan/internal/geom"
)

// Workload is a bank of query points the load generators cycle
// through: flat row-major coordinates, Dim per query.
type Workload struct {
	Coords []float64
	Dim    int
}

// DatasetWorkload queries the model with the dataset's own points —
// the executor loop's access pattern, and the serving-time common case
// of scoring points drawn from the clustered distribution.
func DatasetWorkload(ds *geom.Dataset) Workload {
	return Workload{Coords: ds.Coords, Dim: ds.Dim}
}

// N returns the number of queries in the bank.
func (w Workload) N() int {
	if w.Dim == 0 {
		return 0
	}
	return len(w.Coords) / w.Dim
}

// At returns query i's coordinates (a view; do not mutate).
func (w Workload) At(i int) []float64 {
	base := i * w.Dim
	return w.Coords[base : base+w.Dim : base+w.Dim]
}

// LoadReport summarizes one load-generation run. Latency distributions
// live in the server's own Stats; the generator reports the demand
// side: what was issued and how each query ended.
type LoadReport struct {
	Mode      string        `json:"mode"` // "closed" or "open"
	Clients   int           `json:"clients,omitempty"`
	TargetQPS float64       `json:"target_qps,omitempty"`
	Duration  time.Duration `json:"duration_ns"`
	Issued    uint64        `json:"issued"`
	Completed uint64        `json:"completed"`
	Shed      uint64        `json:"shed"`
	Canceled  uint64        `json:"canceled"`
	Errored   uint64        `json:"errored"`
	// AchievedQPS is completed queries per wall-clock second.
	AchievedQPS float64 `json:"achieved_qps"`
}

type loadCounters struct {
	completed, shed, canceled, errored atomic.Uint64
}

func (c *loadCounters) record(err error) {
	switch {
	case err == nil:
		c.completed.Add(1)
	case errors.Is(err, ErrOverloaded):
		c.shed.Add(1)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		c.canceled.Add(1)
	default:
		c.errored.Add(1)
	}
}

func (c *loadCounters) report(mode string, issued uint64, elapsed time.Duration) LoadReport {
	r := LoadReport{
		Mode:      mode,
		Duration:  elapsed,
		Issued:    issued,
		Completed: c.completed.Load(),
		Shed:      c.shed.Load(),
		Canceled:  c.canceled.Load(),
		Errored:   c.errored.Load(),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		r.AchievedQPS = float64(r.Completed) / sec
	}
	return r
}

// ClosedLoop measures capacity: clients goroutines issue queries
// back-to-back (each waits for its answer before sending the next) for
// duration d. Throughput is bounded by the server; adding clients
// raises concurrency, not offered load per client.
func ClosedLoop(s *Server, w Workload, clients int, d time.Duration) LoadReport {
	if clients < 1 {
		clients = 1
	}
	var c loadCounters
	var issued atomic.Uint64
	start := time.Now()
	deadline := start.Add(d)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := w.N()
			for i := g; time.Now().Before(deadline); i += clients {
				issued.Add(1)
				_, err := s.Assign(context.Background(), w.At(i%n))
				c.record(err)
			}
		}(g)
	}
	wg.Wait()
	rep := c.report("closed", issued.Load(), time.Since(start))
	rep.Clients = clients
	return rep
}

// OpenLoop measures behaviour under a fixed offered load: queries
// arrive at qps per second regardless of how fast answers come back
// (each in its own goroutine), which is what exposes queueing delay
// and shedding — a closed loop self-throttles and cannot overload the
// server. Arrivals the pacer falls behind on are issued in a burst,
// preserving the offered rate.
func OpenLoop(s *Server, w Workload, qps float64, d time.Duration) LoadReport {
	if qps <= 0 || w.N() == 0 {
		return LoadReport{Mode: "open", TargetQPS: qps}
	}
	var c loadCounters
	var wg sync.WaitGroup
	start := time.Now()
	end := start.Add(d)
	var issued uint64
	n := w.N()
	for {
		now := time.Now()
		if !now.Before(end) {
			break
		}
		due := uint64(now.Sub(start).Seconds() * qps)
		for issued < due {
			i := int(issued) % n
			issued++
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, err := s.Assign(context.Background(), w.At(i))
				c.record(err)
			}(i)
		}
		time.Sleep(100 * time.Microsecond)
	}
	wg.Wait()
	rep := c.report("open", issued, time.Since(start))
	rep.TargetQPS = qps
	return rep
}
