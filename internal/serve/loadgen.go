package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"sparkdbscan/internal/geom"
)

// Workload is a bank of query points the load generators cycle
// through: flat row-major coordinates, Dim per query.
type Workload struct {
	Coords []float64
	Dim    int
}

// DatasetWorkload queries the model with the dataset's own points —
// the executor loop's access pattern, and the serving-time common case
// of scoring points drawn from the clustered distribution.
func DatasetWorkload(ds *geom.Dataset) Workload {
	return Workload{Coords: ds.Coords, Dim: ds.Dim}
}

// N returns the number of queries in the bank.
func (w Workload) N() int {
	if w.Dim == 0 {
		return 0
	}
	return len(w.Coords) / w.Dim
}

// At returns query i's coordinates (a view; do not mutate).
func (w Workload) At(i int) []float64 {
	base := i * w.Dim
	return w.Coords[base : base+w.Dim : base+w.Dim]
}

// The outcome taxonomy: every query a generator issues ends in exactly
// one of these classes, so a BENCH_chaos arm's availability number is
// explainable — shed where, failed how, rescued by what.
const (
	OutcomeCompleted    = "completed"     // answered by the primary dispatch
	OutcomeHedgeWon     = "hedge_won"     // answered, and the hedged re-dispatch got there first
	OutcomeShedEnqueue  = "shed_enqueue"  // rejected at admission: every shard full
	OutcomeShedDeadline = "shed_deadline" // dequeued past its queue-delay budget
	OutcomeShedBrownout = "shed_brownout" // priority-shed while degraded/browned-out
	OutcomeShed         = "shed"          // ErrOverloaded with no recorded cause
	OutcomePanicked     = "panicked"      // the query's compute panicked (ErrPanicked)
	OutcomeClosed       = "closed"        // server closed before the answer (ErrClosed)
	OutcomeCanceled     = "canceled"      // the caller's context expired first
	OutcomeErrored      = "errored"       // anything else
)

// outcomeNames is indexed by the internal outcome enum below.
var outcomeNames = [...]string{
	OutcomeCompleted, OutcomeHedgeWon,
	OutcomeShedEnqueue, OutcomeShedDeadline, OutcomeShedBrownout, OutcomeShed,
	OutcomePanicked, OutcomeClosed, OutcomeCanceled, OutcomeErrored,
}

const numOutcomes = len(outcomeNames)

func classifyOutcome(a Assignment, err error) int {
	switch {
	case err == nil && a.Hedged:
		return 1
	case err == nil:
		return 0
	case errors.Is(err, ErrShedEnqueue):
		return 2
	case errors.Is(err, ErrShedDeadline):
		return 3
	case errors.Is(err, ErrShedBrownout):
		return 4
	case errors.Is(err, ErrOverloaded):
		return 5
	case errors.Is(err, ErrPanicked):
		return 6
	case errors.Is(err, ErrClosed):
		return 7
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 8
	}
	return 9
}

// ClassifyOutcome names the taxonomy class of one Assign result.
func ClassifyOutcome(a Assignment, err error) string {
	return outcomeNames[classifyOutcome(a, err)]
}

// LoadReport summarizes one load-generation run. Latency distributions
// live in the server's own Stats; the generator reports the demand
// side: what was issued and how each query ended. The legacy aggregate
// fields (Completed, Shed, Canceled, Errored) always sum to Issued;
// Outcomes is the full per-class breakdown.
type LoadReport struct {
	Mode      string        `json:"mode"` // "closed" or "open"
	Clients   int           `json:"clients,omitempty"`
	TargetQPS float64       `json:"target_qps,omitempty"`
	Duration  time.Duration `json:"duration_ns"`
	Issued    uint64        `json:"issued"`
	// Completed includes HedgeWon; Shed sums the three shed classes;
	// Errored sums panicked, closed and other errors.
	Completed uint64 `json:"completed"`
	Shed      uint64 `json:"shed"`
	Canceled  uint64 `json:"canceled"`
	Errored   uint64 `json:"errored"`
	// The taxonomy detail (only non-zero classes appear in Outcomes).
	HedgeWon     uint64            `json:"hedge_won"`
	ShedEnqueue  uint64            `json:"shed_enqueue"`
	ShedDeadline uint64            `json:"shed_deadline"`
	ShedBrownout uint64            `json:"shed_brownout"`
	Panicked     uint64            `json:"panicked"`
	Closed       uint64            `json:"closed"`
	Outcomes     map[string]uint64 `json:"outcomes"`
	// AchievedQPS is completed queries per wall-clock second;
	// Availability is Completed/Issued.
	AchievedQPS  float64 `json:"achieved_qps"`
	Availability float64 `json:"availability"`
}

type loadCounters struct {
	counts [numOutcomes]atomic.Uint64
}

func (c *loadCounters) record(a Assignment, err error) {
	c.counts[classifyOutcome(a, err)].Add(1)
}

func (c *loadCounters) report(mode string, issued uint64, elapsed time.Duration) LoadReport {
	var n [numOutcomes]uint64
	outcomes := make(map[string]uint64)
	for i := range c.counts {
		n[i] = c.counts[i].Load()
		if n[i] > 0 {
			outcomes[outcomeNames[i]] = n[i]
		}
	}
	r := LoadReport{
		Mode:         mode,
		Duration:     elapsed,
		Issued:       issued,
		Completed:    n[0] + n[1],
		Shed:         n[2] + n[3] + n[4] + n[5],
		Canceled:     n[8],
		Errored:      n[6] + n[7] + n[9],
		HedgeWon:     n[1],
		ShedEnqueue:  n[2],
		ShedDeadline: n[3],
		ShedBrownout: n[4],
		Panicked:     n[6],
		Closed:       n[7],
		Outcomes:     outcomes,
	}
	if sec := elapsed.Seconds(); sec > 0 {
		r.AchievedQPS = float64(r.Completed) / sec
	}
	if issued > 0 {
		r.Availability = float64(r.Completed) / float64(issued)
	}
	return r
}

// LoadOptions parameterizes RunLoad. QPS <= 0 selects the closed loop
// (Clients goroutines issuing back-to-back), QPS > 0 the open loop
// (fixed-rate arrivals, each in its own goroutine).
type LoadOptions struct {
	Clients  int
	QPS      float64
	Duration time.Duration
	// RequestTimeout puts a context deadline on every query (0: none).
	// Chaos arms need it: a dropped response or a starved shard
	// otherwise blocks a closed-loop client forever.
	RequestTimeout time.Duration
	// Priority is the priority every query is issued at.
	Priority Priority
}

func (o LoadOptions) assign(s *Server, q []float64) (Assignment, error) {
	ctx := context.Background()
	if o.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.RequestTimeout)
		defer cancel()
	}
	return s.AssignPriority(ctx, q, o.Priority)
}

// RunLoad drives s with w under o and reports the outcome taxonomy.
func RunLoad(s *Server, w Workload, o LoadOptions) LoadReport {
	if o.QPS > 0 {
		return runOpenLoop(s, w, o)
	}
	return runClosedLoop(s, w, o)
}

// ClosedLoop measures capacity: clients goroutines issue queries
// back-to-back (each waits for its answer before sending the next) for
// duration d. Throughput is bounded by the server; adding clients
// raises concurrency, not offered load per client.
func ClosedLoop(s *Server, w Workload, clients int, d time.Duration) LoadReport {
	return runClosedLoop(s, w, LoadOptions{Clients: clients, Duration: d})
}

func runClosedLoop(s *Server, w Workload, o LoadOptions) LoadReport {
	clients := o.Clients
	if clients < 1 {
		clients = 1
	}
	var c loadCounters
	var issued atomic.Uint64
	start := time.Now()
	deadline := start.Add(o.Duration)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := w.N()
			for i := g; time.Now().Before(deadline); i += clients {
				issued.Add(1)
				a, err := o.assign(s, w.At(i%n))
				c.record(a, err)
			}
		}(g)
	}
	wg.Wait()
	rep := c.report("closed", issued.Load(), time.Since(start))
	rep.Clients = clients
	return rep
}

// OpenLoop measures behaviour under a fixed offered load: queries
// arrive at qps per second regardless of how fast answers come back
// (each in its own goroutine), which is what exposes queueing delay
// and shedding — a closed loop self-throttles and cannot overload the
// server. Arrivals the pacer falls behind on are issued in a burst,
// preserving the offered rate.
func OpenLoop(s *Server, w Workload, qps float64, d time.Duration) LoadReport {
	return runOpenLoop(s, w, LoadOptions{QPS: qps, Duration: d})
}

func runOpenLoop(s *Server, w Workload, o LoadOptions) LoadReport {
	if o.QPS <= 0 || w.N() == 0 {
		return LoadReport{Mode: "open", TargetQPS: o.QPS}
	}
	var c loadCounters
	var wg sync.WaitGroup
	start := time.Now()
	end := start.Add(o.Duration)
	var issued uint64
	n := w.N()
	for {
		now := time.Now()
		if !now.Before(end) {
			break
		}
		due := uint64(now.Sub(start).Seconds() * o.QPS)
		for issued < due {
			i := int(issued) % n
			issued++
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				a, err := o.assign(s, w.At(i))
				c.record(a, err)
			}(i)
		}
		time.Sleep(100 * time.Microsecond)
	}
	wg.Wait()
	rep := c.report("open", issued, time.Since(start))
	rep.TargetQPS = o.QPS
	return rep
}
