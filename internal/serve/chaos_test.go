package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparkdbscan/internal/dbscan"
)

// chaosSeeds are the built-in chaos schedules the serving invariant is
// checked against; CHAOS_SEED in the environment (the CI chaos matrix
// sets it) adds one more.
func chaosSeeds(t *testing.T) []uint64 {
	t.Helper()
	seeds := []uint64{53, 9001}
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		s, err := strconv.ParseUint(env, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// TestChaosScheduleDeterministic pins the determinism contract: the
// same profile renders a byte-identical fault schedule on every call,
// a different seed renders a different one, and every fault kind
// actually appears at these rates.
func TestChaosScheduleDeterministic(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		p := &ChaosProfile{
			Seed:      seed,
			KillRate:  0.05,
			StallRate: 0.05,
			SlowRate:  0.1,
			PanicRate: 0.1,
		}
		a := p.Schedule(8, 256)
		if b := p.Schedule(8, 256); a != b {
			t.Fatalf("seed %d: schedule not deterministic", seed)
		}
		q := *p
		q.Seed = seed + 1
		if a == q.Schedule(8, 256) {
			t.Fatalf("seed %d and %d render the same schedule", seed, seed+1)
		}
		for _, want := range []byte{'K', 'T', 's', 'P', '-'} {
			found := false
			for i := 0; i < len(a); i++ {
				if a[i] == want {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("seed %d: fault %q never fires in 8x256 draws", seed, want)
			}
		}
	}
}

// TestChaosDrawsPure checks the per-decision draws are pure functions:
// victim choice and response drops repeat exactly and stay in range.
func TestChaosDrawsPure(t *testing.T) {
	p := &ChaosProfile{Seed: 7, PanicRate: 1, DropRate: 0.5}
	for seq := uint64(0); seq < 64; seq++ {
		v := p.victim(3, seq, 16)
		if v < 0 || v >= 16 {
			t.Fatalf("victim(3,%d,16) = %d out of range", seq, v)
		}
		if v2 := p.victim(3, seq, 16); v2 != v {
			t.Fatalf("victim not pure: %d then %d", v, v2)
		}
		if p.dropsResponse(3, seq) != p.dropsResponse(3, seq) {
			t.Fatal("dropsResponse not pure")
		}
	}
}

// runVerifiedLoad drives srv from clients closed-loop goroutines for d,
// verifying every successful answer against the immutable snapshot its
// generation names (the "faults never move answers" pin) and that each
// client's generations are monotone. It returns the outcome taxonomy
// counts.
func runVerifiedLoad(t *testing.T, srv *Server, w Workload, byGen func(uint64) *Model, clients int, d, timeout time.Duration) map[string]uint64 {
	t.Helper()
	var mu sync.Mutex
	counts := make(map[string]uint64)
	errc := make(chan error, clients)
	var wg sync.WaitGroup
	deadline := time.Now().Add(d)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := make(map[string]uint64)
			var lastGen uint64
			for i := g; time.Now().Before(deadline); i += clients {
				q := w.At(i % w.N())
				ctx, cancel := context.Background(), context.CancelFunc(func() {})
				if timeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, timeout)
				}
				a, err := srv.Assign(ctx, q)
				cancel()
				local[ClassifyOutcome(a, err)]++
				if err != nil {
					continue
				}
				if a.Generation < lastGen {
					errc <- fmt.Errorf("generation went backwards: %d after %d", a.Generation, lastGen)
					return
				}
				lastGen = a.Generation
				if want := byGen(a.Generation).Assign(q); a.Cluster != want.Cluster || a.Core != want.Core {
					errc <- fmt.Errorf("chaos moved an answer: got (%d,%v), snapshot gen %d says (%d,%v)",
						a.Cluster, a.Core, a.Generation, want.Cluster, want.Core)
					return
				}
			}
			mu.Lock()
			for k, v := range local {
				counts[k] += v
			}
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	return counts
}

func completedOf(c map[string]uint64) uint64 {
	return c[OutcomeCompleted] + c[OutcomeHedgeWon]
}

func issuedOf(c map[string]uint64) uint64 {
	var n uint64
	for _, v := range c {
		n += v
	}
	return n
}

// TestPanicConfinedToRequest is the satellite pin: a panic inside the
// model compute costs the poisoned request an ErrPanicked response —
// never the process, never the worker, never the rest of the batch.
// The poison here is a corrupt model (nil labels under a live core
// bitset), the non-chaos way compute dies in production.
func TestPanicConfinedToRequest(t *testing.T) {
	ds := clusteredDS(11, 1500, 2, 4, 4)
	good, _ := mustFreeze(t, ds, dbscan.Params{Eps: 8, MinPts: 5})
	poisoned := &Model{} // good with its labels torn out: classify panics
	*poisoned = *good
	poisoned.labels = nil

	srv := NewServer(poisoned, Options{Workers: 2, BatchCap: 8})
	defer srv.Close()

	q := ds.At(0) // a clustered point: its neighbourhood has core points
	if _, err := srv.Assign(context.Background(), q); !errors.Is(err, ErrPanicked) {
		t.Fatalf("poisoned compute returned %v, want ErrPanicked", err)
	}

	// The worker recovered: same server, swap in the good model, and it
	// serves correct answers without any respawn having happened.
	if _, err := srv.Swap(good); err != nil {
		t.Fatalf("swap after panic: %v", err)
	}
	a, err := srv.Assign(context.Background(), q)
	if err != nil {
		t.Fatalf("assign after recovery: %v", err)
	}
	if want := good.Assign(q); a.Cluster != want.Cluster || a.Core != want.Core {
		t.Fatalf("post-recovery answer (%d,%v) != direct (%d,%v)", a.Cluster, a.Core, want.Cluster, want.Core)
	}
	st := srv.Stats()
	if st.Panicked == 0 {
		t.Error("Panicked not counted")
	}
	if st.WorkerDeaths != 0 {
		t.Errorf("per-request recover leaked into a worker death (%d)", st.WorkerDeaths)
	}
}

// TestChaosPanicOnlyPoisonsVictim: with PanicRate injection the victim
// gets ErrPanicked and everyone else in its batch still gets the
// fault-free answer (runVerifiedLoad checks every success against the
// model).
func TestChaosPanicOnlyPoisonsVictim(t *testing.T) {
	ds := clusteredDS(12, 2000, 2, 4, 4)
	m, _ := mustFreeze(t, ds, dbscan.Params{Eps: 8, MinPts: 5})
	for _, seed := range chaosSeeds(t) {
		srv := NewServer(m, Options{
			Workers: 4, BatchCap: 8, MaxQueueDelay: -1,
			Chaos: &ChaosProfile{Seed: seed, PanicRate: 0.2},
		})
		counts := runVerifiedLoad(t, srv, DatasetWorkload(ds), func(uint64) *Model { return m },
			8, 120*time.Millisecond, 0)
		srv.Close()
		if counts[OutcomePanicked] == 0 {
			t.Errorf("seed %d: no request was poisoned at PanicRate 0.2", seed)
		}
		if completedOf(counts) == 0 {
			t.Errorf("seed %d: nothing completed", seed)
		}
	}
}

// TestSupervisorRespawnsKilledWorkers: with kill injection and
// supervision on, worker deaths happen and the service keeps answering
// — deaths are respawned and availability stays high.
func TestSupervisorRespawnsKilledWorkers(t *testing.T) {
	ds := clusteredDS(13, 2000, 2, 4, 4)
	m, _ := mustFreeze(t, ds, dbscan.Params{Eps: 8, MinPts: 5})
	for _, seed := range chaosSeeds(t) {
		srv := NewServer(m, Options{
			Workers: 4, BatchCap: 8, MaxQueueDelay: -1,
			StallTimeout: 10 * time.Millisecond, SupervisorInterval: time.Millisecond,
			Chaos: &ChaosProfile{Seed: seed, KillRate: 0.05},
		})
		counts := runVerifiedLoad(t, srv, DatasetWorkload(ds), func(uint64) *Model { return m },
			8, 250*time.Millisecond, 100*time.Millisecond)
		st := srv.Stats()
		srv.Close()
		if st.WorkerDeaths == 0 {
			t.Fatalf("seed %d: no worker died at KillRate 0.05", seed)
		}
		// Deaths in the final supervisor interval may not be respawned
		// yet when the snapshot is taken — allow one lag per worker.
		if st.Respawns+4 < st.WorkerDeaths {
			t.Errorf("seed %d: %d deaths but only %d respawns", seed, st.WorkerDeaths, st.Respawns)
		}
		if c, n := completedOf(counts), issuedOf(counts); float64(c) < 0.9*float64(n) {
			t.Errorf("seed %d: availability %d/%d under supervision", seed, c, n)
		}
	}
}

// TestNoSupervisionShardStarves is the contrast arm: same kill, no
// supervisor — the dead worker's shard starves and queries time out.
func TestNoSupervisionShardStarves(t *testing.T) {
	ds := clusteredDS(14, 1000, 2, 4, 4)
	m, _ := mustFreeze(t, ds, dbscan.Params{Eps: 8, MinPts: 5})
	srv := NewServer(m, Options{
		Workers: 1, BatchCap: 4, MaxQueueDelay: -1,
		StallTimeout: -1, // supervision off
		Chaos:        &ChaosProfile{Seed: 1, KillRate: 1},
	})
	defer srv.Close()

	q := ds.At(0)
	if _, err := srv.Assign(context.Background(), q); !errors.Is(err, ErrPanicked) {
		t.Fatalf("first query on a killed worker: %v, want ErrPanicked", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := srv.Assign(ctx, q); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("query into a starved shard: %v, want DeadlineExceeded", err)
	}
	st := srv.Stats()
	if st.WorkerDeaths != 1 || st.Respawns != 0 {
		t.Errorf("deaths=%d respawns=%d, want 1 and 0", st.WorkerDeaths, st.Respawns)
	}
}

// TestStalledWorkerDeposedAndAnswers: a stalled worker is deposed and
// replaced by the supervisor, yet its in-flight batch is still answered
// correctly (late) when the stall ends — latency moves, answers don't.
func TestStalledWorkerDeposedAndAnswers(t *testing.T) {
	ds := clusteredDS(15, 1000, 2, 4, 4)
	m, _ := mustFreeze(t, ds, dbscan.Params{Eps: 8, MinPts: 5})
	srv := NewServer(m, Options{
		Workers: 1, BatchCap: 4, MaxQueueDelay: -1,
		StallTimeout: 5 * time.Millisecond, SupervisorInterval: time.Millisecond,
		Chaos: &ChaosProfile{Seed: 2, StallRate: 1, StallFor: 25 * time.Millisecond},
	})
	defer srv.Close()

	q := ds.At(0)
	start := time.Now()
	a, err := srv.Assign(context.Background(), q)
	if err != nil {
		t.Fatalf("stalled query: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("stall did not cost latency: %v", elapsed)
	}
	if want := m.Assign(q); a.Cluster != want.Cluster || a.Core != want.Core {
		t.Errorf("stalled answer (%d,%v) != direct (%d,%v)", a.Cluster, a.Core, want.Cluster, want.Core)
	}
	// The supervisor must have deposed the stalled goroutine and spawned
	// a replacement while the query was stuck.
	st := srv.Stats()
	if st.WorkerStalls == 0 || st.Respawns == 0 {
		t.Errorf("stalls=%d respawns=%d, want both > 0", st.WorkerStalls, st.Respawns)
	}
}

// TestHotSwapUnderChaos is the satellite race test: hot-swaps while
// workers are being killed, stalled, slowed and hedged, with every
// response checked against the snapshot its generation names and
// generation stamps monotone per client. Run with -race this is the
// strongest concurrency pin in the package.
func TestHotSwapUnderChaos(t *testing.T) {
	mA, mB := stressModels(t)
	byGen := func(gen uint64) *Model {
		if gen%2 == 1 {
			return mA
		}
		return mB
	}
	for _, seed := range chaosSeeds(t) {
		srv := NewServer(mA, Options{
			Workers: 8, BatchCap: 16, QueueCap: 4096, MaxQueueDelay: -1,
			StallTimeout: 10 * time.Millisecond, SupervisorInterval: time.Millisecond,
			Hedge: true, HedgeDelay: 2 * time.Millisecond,
			Chaos: &ChaosProfile{
				Seed:     seed,
				KillRate: 0.01,
				StallRate: 0.01, StallFor: 15 * time.Millisecond,
				SlowRate: 0.05, SlowFor: 2 * time.Millisecond,
				PanicRate: 0.02,
			},
		})
		stop := make(chan struct{})
		var swapWG sync.WaitGroup
		swapWG.Add(1)
		go func() {
			defer swapWG.Done()
			next := mB
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-time.After(20 * time.Millisecond):
				}
				if _, err := srv.Swap(next); err != nil {
					t.Error(err)
					return
				}
				if next == mB {
					next = mA
				} else {
					next = mB
				}
			}
		}()
		counts := runVerifiedLoad(t, srv, DatasetWorkload(mA.ds), byGen,
			16, 300*time.Millisecond, 150*time.Millisecond)
		close(stop)
		swapWG.Wait()
		st := srv.Stats()
		srv.Close()
		if st.Generation < 2 {
			t.Fatalf("seed %d: no swap happened (gen %d)", seed, st.Generation)
		}
		if completedOf(counts) == 0 {
			t.Fatalf("seed %d: nothing completed under chaos", seed)
		}
	}
}

// TestHedgeRescuesSlowWorkers: with slow-batch injection, hedged
// re-dispatches win often enough to be visible, and every hedged answer
// is still the fault-free answer.
func TestHedgeRescuesSlowWorkers(t *testing.T) {
	ds := clusteredDS(16, 2000, 2, 4, 4)
	m, _ := mustFreeze(t, ds, dbscan.Params{Eps: 8, MinPts: 5})
	srv := NewServer(m, Options{
		Workers: 4, BatchCap: 8, MaxQueueDelay: -1,
		StallTimeout: 50 * time.Millisecond, // slow != stalled: don't depose
		Hedge:        true, HedgeDelay: time.Millisecond, HedgeBudget: 1, HedgeBurst: 64,
		Chaos: &ChaosProfile{Seed: 3, SlowRate: 0.3, SlowFor: 10 * time.Millisecond},
	})
	counts := runVerifiedLoad(t, srv, DatasetWorkload(ds), func(uint64) *Model { return m },
		8, 250*time.Millisecond, 0)
	st := srv.Stats()
	srv.Close()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedges=%d wins=%d under 30%% slow batches, want both > 0", st.Hedges, st.HedgeWins)
	}
	if counts[OutcomeHedgeWon] == 0 {
		t.Error("no client saw a hedge-won outcome")
	}
}

// TestHedgeRescuesDroppedResponses: a dropped response would strand its
// caller forever; the hedge is what turns it into mere latency.
func TestHedgeRescuesDroppedResponses(t *testing.T) {
	ds := clusteredDS(17, 1500, 2, 4, 4)
	m, _ := mustFreeze(t, ds, dbscan.Params{Eps: 8, MinPts: 5})
	srv := NewServer(m, Options{
		Workers: 4, BatchCap: 8, MaxQueueDelay: -1,
		Hedge: true, HedgeDelay: time.Millisecond, HedgeBudget: 1, HedgeBurst: 64,
		Chaos: &ChaosProfile{Seed: 4, DropRate: 0.2},
	})
	counts := runVerifiedLoad(t, srv, DatasetWorkload(ds), func(uint64) *Model { return m },
		8, 250*time.Millisecond, 100*time.Millisecond)
	st := srv.Stats()
	srv.Close()
	if st.Dropped == 0 {
		t.Fatal("no response was dropped at DropRate 0.2")
	}
	if c, n := completedOf(counts), issuedOf(counts); float64(c) < 0.9*float64(n) {
		t.Errorf("availability %d/%d with hedging against drops", c, n)
	}
}

// TestHedgeBudgetBounds pins that hedging cannot amplify overload: the
// token bucket caps dispatches at primaries·HedgeBudget + HedgeBurst,
// and once the bucket drains further hedge attempts are denied.
func TestHedgeBudgetBounds(t *testing.T) {
	ds := clusteredDS(18, 1500, 2, 4, 4)
	m, _ := mustFreeze(t, ds, dbscan.Params{Eps: 8, MinPts: 5})
	const budget, burst = 0.05, 4
	srv := NewServer(m, Options{
		Workers: 2, BatchCap: 8, MaxQueueDelay: -1,
		StallTimeout: 100 * time.Millisecond,
		Hedge:        true, HedgeDelay: 500 * time.Microsecond, HedgeBudget: budget, HedgeBurst: burst,
		Chaos: &ChaosProfile{Seed: 5, SlowRate: 1, SlowFor: 3 * time.Millisecond},
	})
	runVerifiedLoad(t, srv, DatasetWorkload(ds), func(uint64) *Model { return m },
		4, 250*time.Millisecond, 0)
	st := srv.Stats()
	srv.Close()
	primaries := st.Completed - st.HedgeWins
	bound := uint64(float64(primaries)*budget) + burst
	if st.Hedges > bound {
		t.Fatalf("%d hedges exceed the budget bound %d (%d primaries)", st.Hedges, bound, primaries)
	}
	if st.HedgeDenied == 0 {
		t.Error("budget never denied a hedge despite every batch being slow")
	}
}

// TestBrownoutShedsByPriority drives the health ladder directly (the
// EWMA setters are in-package) and pins the degradation contract:
// Degraded sheds Low, BrownedOut sheds everything below High, recovery
// restores everyone — and the shed error is ErrOverloaded to callers.
func TestBrownoutShedsByPriority(t *testing.T) {
	ds := clusteredDS(19, 1000, 2, 4, 4)
	m, _ := mustFreeze(t, ds, dbscan.Params{Eps: 8, MinPts: 5})
	srv := NewServer(m, Options{
		Workers: 2, BatchCap: 8, MaxQueueDelay: 10 * time.Millisecond,
		SupervisorInterval: time.Hour, // drive the ladder by hand
	})
	defer srv.Close()
	q := ds.At(0)

	// Saturate the EWMA past the brownout threshold (0.9 * 10ms).
	for i := 0; i < 200; i++ {
		srv.observeQueueDelay(20 * time.Millisecond)
	}
	srv.updateHealth()
	if h := srv.HealthState(); h != HealthBrownedOut {
		t.Fatalf("health %v after saturating the queue delay, want browned-out", h)
	}
	if _, err := srv.AssignPriority(context.Background(), q, PriorityLow); !errors.Is(err, ErrShedBrownout) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("low priority in brownout: %v, want ErrShedBrownout (an ErrOverloaded)", err)
	}
	if _, err := srv.AssignPriority(context.Background(), q, PriorityNormal); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("normal priority in brownout: %v, want ErrOverloaded", err)
	}
	if a, err := srv.AssignPriority(context.Background(), q, PriorityHigh); err != nil {
		t.Fatalf("high priority must be served in brownout: %v", err)
	} else if want := m.Assign(q); a.Cluster != want.Cluster {
		t.Fatalf("brownout answer %d != direct %d", a.Cluster, want.Cluster)
	}

	// Decay back to Degraded: Low still shed, Normal served again.
	for srv.queueDelayEWMA() >= time.Duration(0.9*float64(10*time.Millisecond))/2 {
		srv.decayQueueDelay()
	}
	srv.updateHealth()
	if h := srv.HealthState(); h != HealthDegraded {
		t.Fatalf("health %v after partial decay, want degraded", h)
	}
	if _, err := srv.AssignPriority(context.Background(), q, PriorityLow); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("low priority while degraded: %v, want ErrOverloaded", err)
	}
	if _, err := srv.AssignPriority(context.Background(), q, PriorityNormal); err != nil {
		t.Fatalf("normal priority while degraded: %v", err)
	}

	// Full decay: healthy, everyone served.
	for srv.queueDelayEWMA() >= time.Duration(0.5*float64(10*time.Millisecond))/2 {
		srv.decayQueueDelay()
	}
	srv.updateHealth()
	if h := srv.HealthState(); h != HealthHealthy {
		t.Fatalf("health %v after full decay, want healthy", h)
	}
	if _, err := srv.AssignPriority(context.Background(), q, PriorityLow); err != nil {
		t.Fatalf("low priority when healthy: %v", err)
	}
	if st := srv.Stats(); st.ShedPriority == 0 || st.HealthTransitions < 2 {
		t.Errorf("shedPriority=%d transitions=%d", st.ShedPriority, st.HealthTransitions)
	}
}

// TestDrainServesBacklog: Drain with a generous deadline answers every
// admitted query (returns 0 failed) while refusing new admissions.
func TestDrainServesBacklog(t *testing.T) {
	ds := clusteredDS(20, 1500, 2, 4, 4)
	m, _ := mustFreeze(t, ds, dbscan.Params{Eps: 8, MinPts: 5})
	srv := NewServer(m, Options{Workers: 2, BatchCap: 4, QueueCap: 256, MaxQueueDelay: -1})
	w := DatasetWorkload(ds)

	const inflight = 64
	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := srv.Assign(context.Background(), w.At(i)); err != nil {
				errs <- err
			}
		}(i)
	}
	for srv.admitted.Load() < inflight { // every client past admission
		time.Sleep(100 * time.Microsecond)
	}
	if failed := srv.Drain(time.Second); failed != 0 {
		t.Fatalf("drain failed %d queries with a generous deadline", failed)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("query during graceful drain: %v", err)
	}
	if _, err := srv.Assign(context.Background(), w.At(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("assign after drain: %v, want ErrClosed", err)
	}
	// Idempotent with Close.
	srv.Close()
	if failed := srv.Drain(time.Second); failed != 0 {
		t.Fatalf("second drain reported %d", failed)
	}
}

// TestDrainDeadline: a backlog that cannot finish by the deadline is
// failed with ErrClosed — drain bounds shutdown time, it does not hang.
func TestDrainDeadline(t *testing.T) {
	ds := clusteredDS(21, 1000, 2, 4, 4)
	m, _ := mustFreeze(t, ds, dbscan.Params{Eps: 8, MinPts: 5})
	// Every batch stalls for 300ms, so a short drain cannot clear the
	// backlog; supervision is off so the stall is never cut short.
	srv := NewServer(m, Options{
		Workers: 1, BatchCap: 1, QueueCap: 64, MaxQueueDelay: -1, StallTimeout: -1,
		Chaos: &ChaosProfile{Seed: 6, StallRate: 1, StallFor: 300 * time.Millisecond},
	})
	w := DatasetWorkload(ds)
	const inflight = 8
	var wg sync.WaitGroup
	var closedErrs atomic.Uint64
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := srv.Assign(context.Background(), w.At(i)); errors.Is(err, ErrClosed) {
				closedErrs.Add(1)
			}
		}(i)
	}
	for srv.admitted.Load() < inflight { // every client past admission
		time.Sleep(100 * time.Microsecond)
	}
	start := time.Now()
	failed := srv.Drain(10 * time.Millisecond)
	if failed == 0 {
		t.Fatal("drain under a stalled worker reported 0 failures")
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("drain took %v, deadline was 10ms", elapsed)
	}
	wg.Wait()
	if closedErrs.Load() == 0 {
		t.Error("no stranded client saw ErrClosed")
	}
	if st := srv.Stats(); st.ClosedInFlight == 0 {
		t.Error("ClosedInFlight not counted")
	}
}
