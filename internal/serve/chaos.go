package serve

import (
	"fmt"
	"strings"
	"time"

	"sparkdbscan/internal/rng"
)

// ChaosProfile injects deterministic faults into a Server's workers:
// worker-goroutine deaths, batch stalls, slow-model latency, poisoned
// requests (compute panics), and dropped responses. It is the serving
// analogue of spark.FaultProfile, and follows the same discipline:
// every decision is a pure function of (Seed, kind, shard, sequence
// number) through rng.Hash64, so a profile produces the exact same
// fault schedule on every run. The resilience tests rely on that to
// assert the serving invariant — faults move latency and the error
// taxonomy, never answers: any query that gets an Assignment gets the
// same Assignment a fault-free server would have produced.
//
// Rates are per draw: KillRate, StallRate, SlowRate and PanicRate are
// drawn once per dequeued batch (in that precedence order — at most
// one batch-level fault fires per batch); DropRate is drawn once per
// delivered response. A zero profile injects nothing.
type ChaosProfile struct {
	// Seed drives all draws. Same rates, different seed ⇒ different
	// schedule.
	Seed uint64
	// KillRate is the per-batch probability that the worker goroutine
	// panics before computing the batch. The in-flight batch is
	// answered with ErrPanicked by the worker's last-gasp recover and
	// the goroutine dies; with supervision enabled the supervisor
	// respawns it, without it the shard starves.
	KillRate float64
	// StallRate is the per-batch probability that the worker freezes —
	// it stops heartbeating and sleeps StallFor before serving the
	// batch (a stuck disk, a pathological GC pause). The supervisor's
	// stall detector deposes and replaces it; the stalled worker still
	// answers its batch (late, correctly) when it wakes, then exits.
	StallRate float64
	// StallFor is the stall duration. Default 30ms.
	StallFor time.Duration
	// SlowRate is the per-batch probability of SlowFor of extra model
	// latency (a cold cache, a throttled core). Unlike a stall the
	// worker keeps heartbeating: it is slow, not stuck — the fault
	// hedged requests exist for.
	SlowRate float64
	// SlowFor is the added latency of a slow batch. Default 2ms. Keep
	// it under the server's StallTimeout or slow batches are deposed
	// as stalls.
	SlowFor time.Duration
	// PanicRate is the per-batch probability that one request in the
	// batch is poisoned: computing it panics. The server answers the
	// victim with ErrPanicked and every other request in the batch
	// normally.
	PanicRate float64
	// DropRate is the per-response probability that a computed answer
	// is dropped instead of delivered (a lost reply). The caller hangs
	// until its hedge or deadline rescues it, so DropRate is only
	// meaningful with hedging or per-request timeouts enabled.
	DropRate float64
}

func (p *ChaosProfile) withDefaults() *ChaosProfile {
	q := *p
	if q.StallFor <= 0 {
		q.StallFor = 30 * time.Millisecond
	}
	if q.SlowFor <= 0 {
		q.SlowFor = 2 * time.Millisecond
	}
	return &q
}

// Enabled reports whether the profile injects anything at all.
func (p *ChaosProfile) Enabled() bool {
	return p != nil && (p.KillRate > 0 || p.StallRate > 0 || p.SlowRate > 0 ||
		p.PanicRate > 0 || p.DropRate > 0)
}

// Draw domains, mixed into the hash so each fault kind is an
// independent stream (same constants-style scheme as spark.FaultProfile).
const (
	chaosDrawKill uint64 = 0xc4a05 + iota
	chaosDrawStall
	chaosDrawSlow
	chaosDrawPanic
	chaosDrawDrop
	chaosDrawVictim
)

// draw returns a uniform [0,1) value, a pure function of its inputs.
func (p *ChaosProfile) draw(kind uint64, shard int, seq uint64) float64 {
	x := p.Seed ^ kind ^ uint64(shard)*0x9e3779b97f4a7c15 ^ seq*0xbf58476d1ce4e5b9
	return float64(rng.Hash64(x)>>11) / (1 << 53)
}

// chaosFault is the batch-level fault decision for one (shard, seq).
type chaosFault int

const (
	chaosNone chaosFault = iota
	chaosKill
	chaosStall
	chaosSlow
	chaosPanic
)

func (f chaosFault) byte() byte {
	switch f {
	case chaosKill:
		return 'K'
	case chaosStall:
		return 'T'
	case chaosSlow:
		return 's'
	case chaosPanic:
		return 'P'
	}
	return '-'
}

// batchFault returns the fault injected into batch seq of shard, a
// pure function of the profile. Precedence: kill > stall > slow >
// panic — at most one batch-level fault per batch.
func (p *ChaosProfile) batchFault(shard int, seq uint64) chaosFault {
	switch {
	case p.KillRate > 0 && p.draw(chaosDrawKill, shard, seq) < p.KillRate:
		return chaosKill
	case p.StallRate > 0 && p.draw(chaosDrawStall, shard, seq) < p.StallRate:
		return chaosStall
	case p.SlowRate > 0 && p.draw(chaosDrawSlow, shard, seq) < p.SlowRate:
		return chaosSlow
	case p.PanicRate > 0 && p.draw(chaosDrawPanic, shard, seq) < p.PanicRate:
		return chaosPanic
	}
	return chaosNone
}

// victim picks which of the n batch members a chaosPanic poisons.
func (p *ChaosProfile) victim(shard int, seq uint64, n int) int {
	if n <= 1 {
		return 0
	}
	x := p.Seed ^ chaosDrawVictim ^ uint64(shard)*0x9e3779b97f4a7c15 ^ seq*0xbf58476d1ce4e5b9
	return int(rng.Hash64(x) % uint64(n))
}

// dropsResponse reports whether delivery seq on shard is dropped.
func (p *ChaosProfile) dropsResponse(shard int, seq uint64) bool {
	return p.DropRate > 0 && p.draw(chaosDrawDrop, shard, seq) < p.DropRate
}

// Schedule renders the batch-level fault schedule for the first
// batches dequeues of each of shards shards, one row per shard
// ('-' none, 'K' kill, 'T' stall, 's' slow, 'P' panic). Because every
// decision is a pure function of the profile, the rendered schedule is
// byte-identical across runs for the same seed — the property
// TestChaosScheduleDeterministic pins and BENCH_chaos reports.
func (p *ChaosProfile) Schedule(shards, batches int) string {
	var b strings.Builder
	for s := 0; s < shards; s++ {
		fmt.Fprintf(&b, "shard %d: ", s)
		for q := 0; q < batches; q++ {
			b.WriteByte(p.batchFault(s, uint64(q)).byte())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
