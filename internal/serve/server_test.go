package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparkdbscan/internal/dbscan"
)

// stressModels builds two snapshots over the same dataset with
// different parameters, so hot-swapping between them changes answers
// in a way the test can verify per generation.
func stressModels(t *testing.T) (*Model, *Model) {
	t.Helper()
	ds := clusteredDS(5, 3000, 2, 6, 5)
	a, _ := mustFreeze(t, ds, dbscan.Params{Eps: 8, MinPts: 5})
	b, _ := mustFreeze(t, ds, dbscan.Params{Eps: 3, MinPts: 10})
	return a, b
}

// TestServerStressHotSwap is the acceptance stress test: ≥ 8 workers,
// sustained concurrent load, hot-swaps mid-load, and every response
// checked against the immutable snapshot its generation names. Run
// under -race this also exercises the admission queue, the batched
// worker path and the atomic swap for data races.
func TestServerStressHotSwap(t *testing.T) {
	mA, mB := stressModels(t)
	// Generations alternate deterministically: odd ⇒ mA, even ⇒ mB
	// (generation 1 is the initial model).
	byGen := func(gen uint64) *Model {
		if gen%2 == 1 {
			return mA
		}
		return mB
	}
	srv := NewServer(mA, Options{Workers: 8, BatchCap: 16, QueueCap: 4096, MaxQueueDelay: -1})
	defer srv.Close()

	w := DatasetWorkload(mA.ds)
	const clients = 24
	var wg sync.WaitGroup
	var served atomic.Uint64
	stop := make(chan struct{})
	errc := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; ; i += clients {
				select {
				case <-stop:
					return
				default:
				}
				q := w.At(i % w.N())
				a, err := srv.Assign(context.Background(), q)
				if err != nil {
					errc <- err
					return
				}
				served.Add(1)
				if want := byGen(a.Generation).Assign(q); a.Cluster != want.Cluster || a.Core != want.Core {
					errc <- errors.New("response disagrees with the snapshot its generation names")
					return
				}
			}
		}(g)
	}
	// Swap back and forth mid-load.
	lastGen := uint64(1)
	for swap := 0; swap < 6; swap++ {
		time.Sleep(30 * time.Millisecond)
		next := mB
		if lastGen%2 == 0 {
			next = mA
		}
		gen, err := srv.Swap(next)
		if err != nil {
			t.Fatal(err)
		}
		if gen != lastGen+1 {
			t.Fatalf("swap %d: generation %d, want %d", swap, gen, lastGen+1)
		}
		lastGen = gen
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if served.Load() == 0 {
		t.Fatal("no queries served")
	}
	st := srv.Stats()
	if st.Completed != served.Load() {
		t.Fatalf("stats completed %d, clients counted %d", st.Completed, served.Load())
	}
	if st.Generation != lastGen {
		t.Fatalf("stats generation %d, want %d", st.Generation, lastGen)
	}
	if st.Batches == 0 || st.MeanBatch < 1 {
		t.Fatalf("implausible batching stats: %+v", st)
	}
	var dist uint64
	for _, c := range st.BatchSizeDist {
		dist += c
	}
	if dist != st.Batches {
		t.Fatalf("batch-size distribution sums to %d, want %d batches", dist, st.Batches)
	}
	if st.LatencyP50 > st.LatencyP99 || st.LatencyP99 > st.LatencyP999 || st.LatencyP999 > st.LatencyMax {
		t.Fatalf("non-monotone latency quantiles: %+v", st)
	}
	if st.QPS <= 0 || st.LatencyP50 <= 0 {
		t.Fatalf("empty serving metrics: %+v", st)
	}
}

// TestServerShedsWhenQueueFull pins the backpressure path: with a
// one-slot queue per shard and a burst far larger than QueueCap, some
// queries must be rejected at admission with ErrOverloaded while the
// accepted ones are answered; nothing hangs and the books balance.
func TestServerShedsWhenQueueFull(t *testing.T) {
	mA, _ := stressModels(t)
	srv := NewServer(mA, Options{Workers: 2, BatchCap: 1, QueueCap: 2, MaxQueueDelay: -1})
	defer srv.Close()
	w := DatasetWorkload(mA.ds)
	const burst = 512
	var wg sync.WaitGroup
	var ok, shed atomic.Uint64
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := srv.Assign(context.Background(), w.At(i%w.N()))
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				shed.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Fatalf("burst of %d against QueueCap 2 shed nothing", burst)
	}
	if ok.Load() == 0 {
		t.Fatal("shedding rejected everything; accepted queries must still be answered")
	}
	st := srv.Stats()
	if st.ShedAtEnq != shed.Load() || st.Completed != ok.Load() {
		t.Fatalf("stats %+v disagree with client counts ok=%d shed=%d", st, ok.Load(), shed.Load())
	}
}

// TestServerDeadlineShedding pins the dequeue-side half of shedding: a
// MaxQueueDelay no worker can meet sheds every admitted query with
// ErrOverloaded, counted separately from admission rejections.
func TestServerDeadlineShedding(t *testing.T) {
	mA, _ := stressModels(t)
	srv := NewServer(mA, Options{Workers: 1, BatchCap: 8, MaxQueueDelay: time.Nanosecond})
	defer srv.Close()
	w := DatasetWorkload(mA.ds)
	for i := 0; i < 32; i++ {
		if _, err := srv.Assign(context.Background(), w.At(i)); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("query %d: err = %v, want ErrOverloaded", i, err)
		}
	}
	if st := srv.Stats(); st.ShedDeadline != 32 || st.Completed != 0 {
		t.Fatalf("want 32 deadline sheds, got %+v", st)
	}
}

// TestServerContextCancellation: a canceled request unblocks the
// caller immediately with the context's error and is counted once the
// worker reaches it; an expired context deadline behaves like a
// per-request deadline.
func TestServerContextCancellation(t *testing.T) {
	mA, _ := stressModels(t)
	srv := NewServer(mA, Options{Workers: 1, BatchCap: 4})
	defer srv.Close()
	w := DatasetWorkload(mA.ds)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Assign(ctx, w.At(0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The worker records the cancellation when it dequeues the request;
	// issue live queries until the counter shows up.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("canceled request never counted")
		}
		if _, err := srv.Assign(context.Background(), w.At(1)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerClose(t *testing.T) {
	mA, _ := stressModels(t)
	srv := NewServer(mA, Options{Workers: 4})
	w := DatasetWorkload(mA.ds)
	if _, err := srv.Assign(context.Background(), w.At(0)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
	if _, err := srv.Assign(context.Background(), w.At(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestServerRejectsWrongDimension(t *testing.T) {
	mA, mB := stressModels(t)
	srv := NewServer(mA, Options{Workers: 1})
	defer srv.Close()
	if _, err := srv.Assign(context.Background(), []float64{1, 2, 3}); err == nil {
		t.Fatal("3-d query against a 2-d model accepted")
	}
	if _, err := srv.Swap(mB); err != nil {
		t.Fatalf("same-dimension swap refused: %v", err)
	}
	ds10 := clusteredDS(8, 400, 10, 2, 8)
	m10, err := Freeze(ds10, make([]int32, 400), nil, nil, dbscan.Params{Eps: 25, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Swap(m10); err == nil {
		t.Fatal("cross-dimension swap accepted")
	}
}

// TestLoadGenerators smoke-tests both loops against a live server and
// checks the reports balance.
func TestLoadGenerators(t *testing.T) {
	mA, _ := stressModels(t)
	srv := NewServer(mA, Options{Workers: 4, BatchCap: 16})
	defer srv.Close()
	w := DatasetWorkload(mA.ds)

	closed := ClosedLoop(srv, w, 8, 60*time.Millisecond)
	if closed.Completed == 0 || closed.AchievedQPS <= 0 {
		t.Fatalf("closed loop served nothing: %+v", closed)
	}
	if closed.Issued != closed.Completed+closed.Shed+closed.Canceled+closed.Errored {
		t.Fatalf("closed-loop books don't balance: %+v", closed)
	}

	open := OpenLoop(srv, w, 2000, 60*time.Millisecond)
	if open.Issued == 0 {
		t.Fatalf("open loop issued nothing: %+v", open)
	}
	if open.Issued != open.Completed+open.Shed+open.Canceled+open.Errored {
		t.Fatalf("open-loop books don't balance: %+v", open)
	}
}

// TestHistogram pins the log-linear bucket mapping's round-trip: the
// representative value of a sample's bucket is never above the sample
// and never more than ~6% below it.
func TestHistogram(t *testing.T) {
	for _, ns := range []uint64{0, 1, 15, 16, 17, 100, 1023, 1024, 5_000, 1_000_000, 123_456_789} {
		b := histBucket(ns)
		lo := histValue(b)
		if lo > ns {
			t.Fatalf("bucket lower edge %d above sample %d", lo, ns)
		}
		if ns > 16 && float64(ns-lo)/float64(ns) > 1.0/histSub {
			t.Fatalf("bucket %d edge %d loses >%d%% of sample %d", b, lo, 100/histSub, ns)
		}
		if b2 := histBucket(lo); b2 != b {
			t.Fatalf("edge %d of bucket %d maps to bucket %d", lo, b, b2)
		}
	}
	var h latencyHist
	for i := 1; i <= 1000; i++ {
		h.observe(time.Duration(i) * time.Microsecond)
	}
	q := h.quantiles(0.5, 0.99)
	if q[0] < 400*time.Microsecond || q[0] > 510*time.Microsecond {
		t.Fatalf("p50 of 1..1000µs = %v", q[0])
	}
	if q[1] < 900*time.Microsecond || q[1] > 1000*time.Microsecond {
		t.Fatalf("p99 of 1..1000µs = %v", q[1])
	}
}
