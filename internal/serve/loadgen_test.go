package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sparkdbscan/internal/dbscan"
)

// TestClassifyOutcome is the satellite table test: every (Assignment,
// error) pair a Server can hand back maps to exactly one taxonomy
// class, including the wrapped variants errors.Is must see through.
func TestClassifyOutcome(t *testing.T) {
	cases := []struct {
		name string
		a    Assignment
		err  error
		want string
	}{
		{"primary answer", Assignment{Cluster: 3}, nil, OutcomeCompleted},
		{"noise answer", Assignment{Cluster: Noise}, nil, OutcomeCompleted},
		{"hedged answer", Assignment{Cluster: 3, Hedged: true}, nil, OutcomeHedgeWon},
		{"queue full", Assignment{}, ErrShedEnqueue, OutcomeShedEnqueue},
		{"deadline shed", Assignment{}, ErrShedDeadline, OutcomeShedDeadline},
		{"brownout shed", Assignment{}, ErrShedBrownout, OutcomeShedBrownout},
		{"bare overload", Assignment{}, ErrOverloaded, OutcomeShed},
		{"wrapped overload", Assignment{}, fmt.Errorf("rpc: %w", ErrOverloaded), OutcomeShed},
		{"wrapped enqueue shed", Assignment{}, fmt.Errorf("rpc: %w", ErrShedEnqueue), OutcomeShedEnqueue},
		{"panicked", Assignment{}, ErrPanicked, OutcomePanicked},
		{"wrapped panic", Assignment{}, fmt.Errorf("rpc: %w", ErrPanicked), OutcomePanicked},
		{"closed", Assignment{}, ErrClosed, OutcomeClosed},
		{"canceled", Assignment{}, context.Canceled, OutcomeCanceled},
		{"deadline exceeded", Assignment{}, context.DeadlineExceeded, OutcomeCanceled},
		{"other error", Assignment{}, errors.New("dim mismatch"), OutcomeErrored},
	}
	for _, c := range cases {
		if got := ClassifyOutcome(c.a, c.err); got != c.want {
			t.Errorf("%s: ClassifyOutcome = %q, want %q", c.name, got, c.want)
		}
	}
}

// TestLoadReportBooksBalance: the legacy aggregates and the taxonomy
// detail must tell the same story — Issued is fully partitioned either
// way, and Outcomes carries exactly the non-zero classes.
func TestLoadReportBooksBalance(t *testing.T) {
	var c loadCounters
	feed := []struct {
		a   Assignment
		err error
		n   int
	}{
		{Assignment{Cluster: 1}, nil, 40},
		{Assignment{Cluster: 1, Hedged: true}, nil, 5},
		{Assignment{}, ErrShedEnqueue, 7},
		{Assignment{}, ErrShedDeadline, 3},
		{Assignment{}, ErrShedBrownout, 2},
		{Assignment{}, ErrPanicked, 4},
		{Assignment{}, ErrClosed, 1},
		{Assignment{}, context.DeadlineExceeded, 6},
		{Assignment{}, errors.New("boom"), 2},
	}
	var issued uint64
	for _, f := range feed {
		for i := 0; i < f.n; i++ {
			c.record(f.a, f.err)
			issued++
		}
	}
	r := c.report("closed", issued, time.Second)
	if got := r.Completed + r.Shed + r.Canceled + r.Errored; got != r.Issued {
		t.Fatalf("books don't balance: %d+%d+%d+%d = %d != issued %d",
			r.Completed, r.Shed, r.Canceled, r.Errored, got, r.Issued)
	}
	if r.Completed != 45 || r.HedgeWon != 5 {
		t.Errorf("completed=%d hedgeWon=%d, want 45 and 5", r.Completed, r.HedgeWon)
	}
	if r.Shed != 12 || r.ShedEnqueue != 7 || r.ShedDeadline != 3 || r.ShedBrownout != 2 {
		t.Errorf("shed=%d (%d/%d/%d), want 12 (7/3/2)", r.Shed, r.ShedEnqueue, r.ShedDeadline, r.ShedBrownout)
	}
	if r.Errored != 7 || r.Panicked != 4 || r.Closed != 1 {
		t.Errorf("errored=%d panicked=%d closed=%d, want 7/4/1", r.Errored, r.Panicked, r.Closed)
	}
	if r.Canceled != 6 {
		t.Errorf("canceled=%d, want 6", r.Canceled)
	}
	var fromMap uint64
	for _, v := range r.Outcomes {
		fromMap += v
	}
	if fromMap != issued {
		t.Errorf("Outcomes sums to %d, issued %d", fromMap, issued)
	}
	if r.Availability < 0.64 || r.Availability > 0.65 {
		t.Errorf("availability %.3f, want 45/70", r.Availability)
	}
}

// TestRunLoadWithPriorityAndTimeout smoke-tests the extended load
// options end to end against a live server.
func TestRunLoadWithPriorityAndTimeout(t *testing.T) {
	ds := clusteredDS(22, 1500, 2, 4, 4)
	m, _ := mustFreeze(t, ds, dbscan.Params{Eps: 8, MinPts: 5})
	srv := NewServer(m, Options{Workers: 2, BatchCap: 8})
	defer srv.Close()
	r := RunLoad(srv, DatasetWorkload(ds), LoadOptions{
		Clients: 4, Duration: 50 * time.Millisecond,
		RequestTimeout: 50 * time.Millisecond, Priority: PriorityHigh,
	})
	if r.Issued == 0 || r.Completed == 0 {
		t.Fatalf("issued=%d completed=%d", r.Issued, r.Completed)
	}
	if got := r.Completed + r.Shed + r.Canceled + r.Errored; got != r.Issued {
		t.Fatalf("books don't balance: %d != %d", got, r.Issued)
	}
}
