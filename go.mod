module sparkdbscan

go 1.22
