package sparkdbscan

// ---- high-dimensional mode: KNN-graph DBSCAN ----
//
// Every Table I workload is d=10, where the packed kd-tree wins; real
// embedding workloads (d=128+) defeat spatial pruning entirely (see the
// kdtree high-dimension tests). ClusterKNN recovers DBSCAN from a
// k-nearest-neighbour graph instead: an exact blocked brute-force
// builder, or an approximate NN-descent builder that trades a little
// graph recall for a large build speedup, both feeding the same
// union-find clustering the distributed merge uses. See internal/knng,
// examples/embeddings and the -knnbench benchmark.

import (
	"fmt"

	"sparkdbscan/internal/dbscan"
	"sparkdbscan/internal/knng"
	"sparkdbscan/internal/quest"
)

// KNNAlgo selects how the kNN graph is built.
type KNNAlgo int

const (
	// KNNExact is the blocked brute-force builder: the true kNN graph,
	// O(n²d) worst case. With it, ClusterKNN reproduces exact DBSCAN
	// (given a k large enough to witness the clusters' connectivity).
	KNNExact KNNAlgo = iota
	// KNNDescent is the approximate NN-descent builder: seeded,
	// deterministic per Seed at any worker count, typically >90%
	// recall at a fraction of the exact build cost.
	KNNDescent
)

func (a KNNAlgo) String() string {
	switch a {
	case KNNExact:
		return "exact"
	case KNNDescent:
		return "nndescent"
	default:
		return fmt.Sprintf("KNNAlgo(%d)", int(a))
	}
}

// ParseKNNAlgo converts the CLI spelling ("exact", "nndescent").
func ParseKNNAlgo(s string) (KNNAlgo, error) {
	switch s {
	case "exact":
		return KNNExact, nil
	case "nndescent":
		return KNNDescent, nil
	default:
		return 0, fmt.Errorf("sparkdbscan: unknown knn algorithm %q (want exact or nndescent)", s)
	}
}

// KNNConfig configures a KNN-graph DBSCAN run.
type KNNConfig struct {
	// Eps and MinPts are the DBSCAN parameters; K is the graph degree
	// (default 16). K must be at least MinPts-1 so the graph can
	// witness the core rule.
	Eps    float64
	MinPts int
	K      int
	// Algo picks the graph builder (default KNNExact).
	Algo KNNAlgo
	// Seed drives KNNDescent's sampling; the run is byte-identical per
	// seed at any worker count.
	Seed uint64
	// Workers parallelizes the graph build and the clustering (<= 0:
	// all host cores).
	Workers int
	// Mutual switches the core-core edge rule to require each core in
	// the other's list (the conservative variant); default one-sided.
	Mutual bool
}

// KNNResult is the outcome of a KNN-graph clustering run.
type KNNResult struct {
	// Labels assigns each point a cluster id in [0, NumClusters) or
	// Noise.
	Labels []int32
	// Core marks the points proven core by the graph (on an exact
	// graph, exactly DBSCAN's core set).
	Core []bool
	// KDist is each point's distance to its K-th nearest listed
	// neighbour — the k-distance plot used to pick Eps, and a
	// per-point density/outlier signal.
	KDist       []float64
	NumClusters int
	NumNoise    int
}

// ClusterKNN clusters ds through a kNN graph. Deterministic: exact
// mode depends only on (ds, cfg); approximate mode additionally only
// on Seed.
func ClusterKNN(ds *Dataset, cfg KNNConfig) (*KNNResult, error) {
	if cfg.K == 0 {
		cfg.K = DefaultKNNK
	}
	var (
		g   *knng.Graph
		err error
	)
	switch cfg.Algo {
	case KNNExact:
		g, err = knng.BuildExact(ds, cfg.K, cfg.Workers)
	case KNNDescent:
		g, err = knng.BuildNNDescent(ds, cfg.K, knng.ApproxOptions{Seed: cfg.Seed, Workers: cfg.Workers})
	default:
		err = fmt.Errorf("sparkdbscan: unknown KNNAlgo %v", cfg.Algo)
	}
	if err != nil {
		return nil, err
	}
	edges := knng.EdgeOneSided
	if cfg.Mutual {
		edges = knng.EdgeMutual
	}
	res, err := knng.DBSCAN(g, dbscan.Params{Eps: cfg.Eps, MinPts: cfg.MinPts},
		knng.Options{Workers: cfg.Workers, Edges: edges})
	if err != nil {
		return nil, err
	}
	return &KNNResult{
		Labels:      res.Labels,
		Core:        res.Core,
		KDist:       res.KDist,
		NumClusters: res.NumClusters,
		NumNoise:    res.NumNoise,
	}, nil
}

// DefaultKNNK is the default graph degree for ClusterKNN and the knn
// benchmark's reference configuration.
const DefaultKNNK = 16

// GenerateEmbeddings builds one of the reference embedding mixtures by
// name (embed4k, embed20k): Gaussian clusters on the d=128 unit
// sphere plus uniform unit-vector noise, the workload family the knn
// mode exists for. maxPoints > 0 scales the mixture down; the returned
// eps and minPts are the parameters the mixture is calibrated for.
func GenerateEmbeddings(name string, maxPoints int) (ds *Dataset, eps float64, minPts int, err error) {
	spec, err := quest.EmbedByName(name)
	if err != nil {
		return nil, 0, 0, err
	}
	if maxPoints > 0 {
		spec = spec.Scaled(maxPoints)
	}
	ds, err = quest.GenerateEmbedding(spec)
	if err != nil {
		return nil, 0, 0, err
	}
	return ds, spec.Eps, spec.MinPts, nil
}
